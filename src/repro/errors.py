"""Exception hierarchy for the repro package.

Every layer of the stack raises a subclass of :class:`ReproError` so callers
can catch coarsely (``except ReproError``) or precisely (e.g.
``except ReplayError``).  Security-relevant failures derive from
:class:`SecurityError`; the secure primitives convert low-level crypto
failures into the protocol-level errors defined in :mod:`repro.core`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Crypto layer
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for failures in :mod:`repro.crypto`."""


class InvalidKeyError(CryptoError):
    """A key is malformed, of the wrong type, or outside supported sizes."""


class InvalidSignatureError(CryptoError):
    """Signature verification failed."""


class DecryptionError(CryptoError):
    """Ciphertext could not be decrypted (bad key, padding, or tag)."""


class EncodingError(CryptoError):
    """Encoding or decoding of a crypto structure failed (PKCS#1, DER-lite)."""


class InvalidPaddingError(DecryptionError):
    """Block-cipher or PKCS#1 padding check failed."""


class InvalidTagError(DecryptionError):
    """AEAD authentication tag mismatch."""


class UnknownSessionError(DecryptionError):
    """A resumed frame referenced a session id the receiver does not hold
    (never established, expired, or evicted) — distinct from an
    authentication failure on a *live* session so protocol code can ask
    the sender to re-key without exposing live sessions to resets."""

    def __init__(self, message: str, sid: str | None = None) -> None:
        super().__init__(message)
        self.sid = sid


# ---------------------------------------------------------------------------
# XML / XMLdsig layer
# ---------------------------------------------------------------------------

class XMLError(ReproError):
    """Base class for failures in :mod:`repro.xmllib`."""


class XMLParseError(XMLError):
    """The XML document is not well-formed."""


class XMLDsigError(ReproError):
    """Base class for XML digital signature failures."""


class DigestMismatchError(XMLDsigError):
    """A Reference digest does not match the canonicalized content."""


class SignatureFormatError(XMLDsigError):
    """The Signature element is structurally invalid."""


# ---------------------------------------------------------------------------
# Simulation layer
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """Base class for discrete-event simulator failures."""


class NetworkError(SimulationError):
    """A message could not be delivered (no route, endpoint down...)."""


# ---------------------------------------------------------------------------
# JXTA layer
# ---------------------------------------------------------------------------

class JxtaError(ReproError):
    """Base class for failures in :mod:`repro.jxta`."""


class AdvertisementError(JxtaError):
    """An advertisement is malformed or of an unexpected type."""


class PipeError(JxtaError):
    """Pipe resolution or delivery failed."""


class DiscoveryError(JxtaError):
    """Advertisement discovery failed."""


class FrameTooLargeError(JxtaError):
    """A wire frame exceeded the configured maximum size before parsing."""

    def __init__(self, message: str, size: int = 0, limit: int = 0) -> None:
        super().__init__(message)
        self.size = size
        self.limit = limit


class TransportError(JxtaError):
    """A (simulated) transport-level failure."""


class HandshakeError(TransportError):
    """TLS/CBJX handshake failure."""


# ---------------------------------------------------------------------------
# JXTA-Overlay layer
# ---------------------------------------------------------------------------

class OverlayError(ReproError):
    """Base class for JXTA-Overlay middleware failures."""


class NotConnectedError(OverlayError):
    """A primitive requiring a broker connection was invoked while offline."""


class AuthenticationError(OverlayError):
    """Username/password rejected by the broker."""


class GroupError(OverlayError):
    """Group management failure (unknown group, not a member...)."""


class DatabaseError(OverlayError):
    """Central user database failure."""


class PrimitiveError(OverlayError):
    """A primitive was invoked with invalid arguments or state."""


class PrimitiveTimeoutError(OverlayError):
    """A primitive exhausted its virtual-clock timeout budget."""


class BrokerUnavailableError(NotConnectedError):
    """Broker requests kept failing after retries and failover.

    Subclasses :class:`NotConnectedError` so pre-robustness callers that
    catch the older type keep working.
    """


class CircuitOpenError(BrokerUnavailableError):
    """The circuit breaker refused the call without touching the wire."""


# ---------------------------------------------------------------------------
# Security extension (the paper's contribution)
# ---------------------------------------------------------------------------

class SecurityError(ReproError):
    """Base class for the secure-primitive protocol failures."""


class CredentialError(SecurityError):
    """A credential is malformed, expired, or has an untrusted issuer."""


class BrokerAuthenticationError(SecurityError):
    """secureConnection: the broker failed the challenge/response check."""


class ClientAuthenticationError(SecurityError):
    """secureLogin: the client failed authentication at the broker."""


class ReplayError(SecurityError):
    """A session identifier was missing, reused, or expired."""


class CBIDMismatchError(SecurityError):
    """Public key does not hash to the claimed crypto-based identifier."""


class TamperedAdvertisementError(SecurityError):
    """A signed advertisement failed XMLdsig validation."""


class TamperedMessageError(SecurityError):
    """A secure message failed decryption or signature validation."""


class PolicyError(SecurityError):
    """Operation forbidden by the active security policy."""


class StaleEpochError(SecurityError):
    """A group frame is sealed under a rotated-out epoch key."""


class UnknownEpochError(SecurityError):
    """A group frame names an epoch this holder has no key for."""
