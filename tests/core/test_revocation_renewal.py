"""Credential revocation lists and renewal (the §6 further-work set)."""

import pytest

from repro.core.credentials import issue_credential, self_signed_credential
from repro.core.revocation import (
    RevocationChecker,
    RevocationList,
    RevocationRegistry,
    RevokedCredentialError,
)
from repro.crypto.drbg import HmacDrbg
from repro.errors import CredentialError, SecurityError
from repro.jxta.ids import cbid_from_key
from repro.xmllib import parse, serialize
from tests.conftest import cached_keypair

ADMIN = cached_keypair(512, "admin")
BROKER = cached_keypair(512, "broker")
ALICE = cached_keypair(512, "client-alice")


@pytest.fixture()
def registry():
    return RevocationRegistry(BROKER.private, cbid_from_key(BROKER.public),
                              HmacDrbg(b"rl"))


@pytest.fixture()
def alice_chain():
    broker_cred = issue_credential(ADMIN.private, cbid_from_key(ADMIN.public),
                                   "admin", BROKER.public, "B0", 0.0, 1e8)
    alice_cred = issue_credential(BROKER.private, cbid_from_key(BROKER.public),
                                  "B0", ALICE.public, "alice", 0.0, 1e7)
    return [alice_cred, broker_cred]


class TestRevocationList:
    def test_build_and_verify(self, registry):
        registry.revoke(str(cbid_from_key(ALICE.public)))
        rl = registry.current_list(now=5.0)
        rl.verify(BROKER.public)
        assert rl.is_revoked(cbid_from_key(ALICE.public))
        assert rl.serial == 1

    def test_serials_increment(self, registry):
        assert registry.current_list(1.0).serial == 1
        assert registry.current_list(2.0).serial == 2

    def test_wire_roundtrip(self, registry):
        registry.revoke("urn:jxta:cbid-" + "ab" * 16)
        rl = registry.current_list(now=1.0)
        restored = RevocationList.from_element(parse(serialize(rl.element)))
        restored.verify(BROKER.public)
        assert restored.revoked == rl.revoked
        assert restored.serial == rl.serial

    def test_tampered_list_rejected(self, registry):
        registry.revoke("urn:jxta:cbid-" + "ab" * 16)
        rl = registry.current_list(now=1.0)
        element = rl.element.deep_copy()
        element.find("Revoked").children = []  # un-revoke by tampering
        restored = RevocationList.from_element(element)
        with pytest.raises(CredentialError):
            restored.verify(BROKER.public)

    def test_wrong_issuer_key_rejected(self, registry):
        rl = registry.current_list(now=1.0)
        with pytest.raises(CredentialError):
            rl.verify(ADMIN.public)

    def test_reinstate(self, registry):
        subject = str(cbid_from_key(ALICE.public))
        registry.revoke(subject)
        assert registry.is_revoked(subject)
        registry.reinstate(subject)
        assert not registry.is_revoked(subject)
        assert not registry.current_list(1.0).is_revoked(subject)


class TestRevocationChecker:
    def test_update_and_check(self, registry, alice_chain):
        checker = RevocationChecker()
        checker.check_chain(alice_chain)  # no lists -> nothing to flag
        registry.revoke(alice_chain[0])
        assert checker.update(registry.current_list(1.0), BROKER.public)
        with pytest.raises(RevokedCredentialError):
            checker.check_chain(alice_chain)

    def test_stale_serial_ignored(self, registry):
        checker = RevocationChecker()
        first = registry.current_list(1.0)
        second = registry.current_list(2.0)
        assert checker.update(second, BROKER.public)
        assert not checker.update(first, BROKER.public)  # stale

    def test_bad_signature_not_installed(self, registry):
        checker = RevocationChecker()
        rl = registry.current_list(1.0)
        with pytest.raises(CredentialError):
            checker.update(rl, ADMIN.public)
        assert checker.known_issuers() == []


class TestEndToEndRevocation:
    def test_revoked_peer_cannot_be_messaged(self, joined_secure_world):
        from repro.errors import DiscoveryError

        w = joined_secure_world
        # sanity: works before revocation
        assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "pre")
        w.broker.revoke_user("bob")
        # bob is disconnected (his advertisements purged) AND on the
        # revocation list — either layer stops the send
        with pytest.raises((SecurityError, DiscoveryError)):
            w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "post")

    def test_revoked_peer_disconnected(self, joined_secure_world):
        w = joined_secure_world
        w.broker.revoke_peer(str(w.bob.peer_id))
        assert str(w.bob.peer_id) not in w.broker.connected

    def test_revocation_respects_cache(self, joined_secure_world):
        """Validation cache must not shield a freshly revoked peer.

        Revoke WITHOUT disconnecting so bob's advertisement stays in
        alice's cache: the rejection must come from the validator's
        revocation check on the cache-hit path.  The validator digest
        cache is exercised with the pipe-validation memo disabled so
        cache hits land there rather than in the memo above it."""
        from repro import perf

        w = joined_secure_world
        with perf.flags(pipe_validation_memo=False):
            for i in range(3):  # warm alice's validation cache on bob
                w.alice.secure_msg_peer(str(w.bob.peer_id), "students", f"m{i}")
            assert w.alice.validator.cache_hits > 0
            w.broker.revocations.revoke(str(w.bob.peer_id))
            w.broker.publish_revocations()
            with pytest.raises(RevokedCredentialError):
                w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "cached?")

    def test_revocation_respects_pipe_memo(self, joined_secure_world):
        """The validated-pipe memo must not shield a revoked peer either.

        With the memo enabled (the default), repeat sends hit the memo
        above the validator's digest cache — the revocation check must
        still run on every memo hit."""
        w = joined_secure_world
        for i in range(3):  # warm alice's validated-pipe memo on bob
            w.alice.secure_msg_peer(str(w.bob.peer_id), "students", f"m{i}")
        assert w.alice._validated_pipes  # memo actually warm
        w.broker.revocations.revoke(str(w.bob.peer_id))
        w.broker.publish_revocations()
        with pytest.raises(RevokedCredentialError):
            w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "cached?")

    def test_fetch_revocations_on_demand(self, joined_secure_world):
        w = joined_secure_world
        w.broker.revocations.revoke(str(w.bob.peer_id))
        w.broker._current_rl = None  # nothing pushed yet
        assert w.alice.fetch_revocations()
        with pytest.raises(SecurityError):
            w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "x")

    def test_foreign_revocation_list_ignored(self, joined_secure_world):
        """A forged revocation list (wrong issuer) must be discarded."""
        w = joined_secure_world
        forger = RevocationRegistry(
            w.carol.keystore.keys.private, w.carol.keystore.cbid)
        forged = forger.current_list(1.0)
        assert not w.alice._accept_revocation_list(forged.element)

    def test_renewal_after_revocation_refused(self, joined_secure_world):
        w = joined_secure_world
        w.broker.revocations.revoke(str(w.bob.peer_id))
        with pytest.raises(SecurityError, match="revoked|rejected"):
            w.bob.secure_renew_credential()


class TestRenewal:
    def test_renewal_issues_fresh_credential(self, joined_secure_world):
        w = joined_secure_world
        old = w.alice.keystore.credential
        w.net.clock.advance(100.0)
        fresh = w.alice.secure_renew_credential()
        assert fresh.not_after > old.not_after
        assert fresh.public_key == old.public_key
        assert w.alice.keystore.credential.not_after == fresh.not_after

    def test_renewed_chain_accepted_by_peers(self, joined_secure_world):
        w = joined_secure_world
        w.alice.secure_renew_credential()
        got = []
        w.bob.events.subscribe("secure_message_received",
                               lambda **kw: got.append(kw))
        # bob must accept messages resolved through alice's re-published adv
        assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "fresh")
        w.bob.validator.invalidate()
        assert got

    def test_renewal_requires_login(self, secure_world):
        w = secure_world
        w.alice.secure_connect("broker:0")
        from repro.errors import NotConnectedError

        with pytest.raises(NotConnectedError):
            w.alice.secure_renew_credential()

    def test_renewal_with_expired_credential_refused(self):
        from tests.conftest import SecureWorld

        world = SecureWorld()
        world.broker.policy = world.POLICY.with_(credential_lifetime=10.0)
        world.join_all()
        world.net.clock.advance(50.0)  # credential now expired
        with pytest.raises(SecurityError):
            world.alice.secure_renew_credential()
