"""Security policy validation."""

import pytest

from repro.core.policy import DEFAULT_POLICY, ERA_2009_POLICY, SecurityPolicy
from repro.errors import PolicyError


class TestValidation:
    def test_defaults_valid(self):
        assert DEFAULT_POLICY.validate() is DEFAULT_POLICY

    def test_era_policy_uses_v15_stack(self):
        assert ERA_2009_POLICY.envelope_suite == "aes128-cbc"
        assert ERA_2009_POLICY.envelope_wrap == "rsa-pkcs1v15"
        assert ERA_2009_POLICY.signature_scheme == "rsa-pkcs1v15-sha256"

    @pytest.mark.parametrize("bad", [
        {"envelope_suite": "des"},
        {"envelope_wrap": "rsa-raw"},
        {"signature_scheme": "ecdsa"},
        {"challenge_bytes": 8},
        {"credential_lifetime": 0.0},
    ])
    def test_invalid_rejected(self, bad):
        with pytest.raises(PolicyError):
            SecurityPolicy(**bad).validate()

    def test_with_creates_validated_copy(self):
        updated = DEFAULT_POLICY.with_(rsa_bits=2048)
        assert updated.rsa_bits == 2048
        assert DEFAULT_POLICY.rsa_bits == 1024  # frozen original untouched

    def test_with_rejects_invalid(self):
        with pytest.raises(PolicyError):
            DEFAULT_POLICY.with_(challenge_bytes=1)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_POLICY.rsa_bits = 512  # type: ignore[misc]
