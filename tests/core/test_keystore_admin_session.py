"""Keystores, the administrator, and the sid store."""

import pytest

from repro.core import Administrator
from repro.core.keystore import Keystore
from repro.core.session import SidStore
from repro.crypto.drbg import HmacDrbg
from repro.errors import CredentialError, ReplayError
from repro.jxta.ids import cbid_from_key
from repro.sim import VirtualClock
from tests.conftest import cached_keypair


@pytest.fixture()
def admin():
    return Administrator(HmacDrbg(b"adm"), keys=cached_keypair(512, "admin"))


class TestKeystore:
    def test_cbid_derived(self, kp512):
        ks = Keystore(kp512)
        assert ks.cbid == cbid_from_key(kp512.public)

    def test_credential_requires_chain(self, kp512):
        with pytest.raises(CredentialError):
            _ = Keystore(kp512).credential

    def test_chain_leaf_must_match_key(self, kp512, admin):
        ks = Keystore(kp512)
        with pytest.raises(CredentialError):
            ks.install_chain([admin.credential])  # admin's cred, our key

    def test_anchor_must_be_self_signed(self, kp512, admin):
        ks = Keystore(kp512)
        broker_cred = admin.issue_broker_credential(
            cached_keypair(512, "broker").public, "B0")
        with pytest.raises(CredentialError):
            ks.install_anchor(broker_cred)
        with pytest.raises(CredentialError):
            ks.require_anchor()

    def test_peer_cache(self, kp512, admin):
        ks = Keystore(kp512)
        cred = admin.credential
        ks.remember_peer(cred)
        assert ks.recall_peer(str(cred.subject_id)) is cred
        assert ks.validated_count == 1
        ks.forget_peer(str(cred.subject_id))
        assert ks.recall_peer(str(cred.subject_id)) is None


class TestAdministrator:
    def test_self_signed_anchor(self, admin):
        cred = admin.credential
        assert cred.self_signed
        cred.verify(admin.public_key, now=0.0)

    def test_broker_credential_chain(self, admin):
        broker_keys = cached_keypair(512, "broker")
        cred = admin.issue_broker_credential(broker_keys.public, "B0")
        from repro.core.credentials import validate_chain

        assert validate_chain([cred], admin.credential, now=1.0).subject_name == "B0"

    def test_register_user_provisions_database(self, admin):
        admin.register_user("zoe", "pw", {"g"})
        assert admin.database.check_credentials("zoe", "pw")
        assert admin.database.groups_of("zoe") == {"g"}

    def test_deterministic_given_keys_and_seed(self):
        a = Administrator(HmacDrbg(b"adm"), keys=cached_keypair(512, "admin"))
        b = Administrator(HmacDrbg(b"adm"), keys=cached_keypair(512, "admin"))
        assert a.keystore.cbid == b.keystore.cbid


class TestSidStore:
    @pytest.fixture()
    def store(self):
        clock = VirtualClock()
        return clock, SidStore(clock, HmacDrbg(b"sid"), lifetime=100.0)

    def test_issue_and_consume_once(self, store):
        _, sids = store
        sid = sids.issue("peer:a")
        assert sids.outstanding == 1
        sids.consume(sid)
        assert sids.outstanding == 0
        with pytest.raises(ReplayError):
            sids.consume(sid)
        assert sids.replays_blocked == 1

    def test_unknown_sid_rejected(self, store):
        _, sids = store
        with pytest.raises(ReplayError):
            sids.consume("ffff" * 16)

    def test_sids_unpredictable_length(self, store):
        _, sids = store
        sid = sids.issue("peer:a")
        assert len(sid) == 64  # 32 bytes hex: "sufficiently long"

    def test_sids_unique(self, store):
        _, sids = store
        assert len({sids.issue("x") for _ in range(50)}) == 50
        assert sids.issued_total == 50

    def test_expired_sid_rejected(self, store):
        clock, sids = store
        sid = sids.issue("peer:a")
        clock.advance(101.0)
        with pytest.raises(ReplayError):
            sids.consume(sid)

    def test_sweep(self, store):
        clock, sids = store
        sids.issue("a")
        sids.issue("b")
        clock.advance(101.0)
        fresh = sids.issue("c")
        assert sids.sweep() == 2
        assert sids.outstanding == 1
        sids.consume(fresh)
