"""secureLogin (§4.2.2): codecs, broker checks, replay protection."""

import pytest

from repro.core import secure_login as sl
from repro.errors import (
    CBIDMismatchError,
    ClientAuthenticationError,
    CredentialError,
    SecurityError,
)
from repro.jxta.ids import cbid_from_key
from repro.jxta.messages import Message
from tests.conftest import cached_keypair

BROKER = cached_keypair(512, "broker")
ALICE = cached_keypair(512, "client-alice")
MALLORY = cached_keypair(512, "client-mallory")

SUITE = "chacha20poly1305"
WRAP = "rsa-pkcs1v15"
SCHEME = "rsa-pss-sha256"


def _request(username="alice", password="pw", keys=ALICE, sid="sid-1"):
    doc = sl.build_login_document(username, password, keys, "alice-app",
                                  "peer:alice", scheme=SCHEME)
    return sl.seal_login_request(doc, sid, BROKER.public, SUITE, WRAP)


class TestCodecs:
    def test_open_recovers_claim(self):
        msg = Message.from_wire(_request().to_wire())
        claim = sl.open_login_request(msg, BROKER.private)
        assert claim.username == "alice"
        assert claim.password == "pw"
        assert claim.public_key == ALICE.public
        assert claim.peer_id == str(cbid_from_key(ALICE.public))
        assert claim.sid == "sid-1"

    def test_password_not_on_the_wire(self):
        wire = _request(password="super-secret-pw").to_wire()
        assert b"super-secret-pw" not in wire
        assert b"alice" not in wire  # username hidden too

    def test_wrong_broker_key_cannot_open(self):
        other = cached_keypair(512, "client-mallory")
        with pytest.raises(ClientAuthenticationError):
            sl.open_login_request(_request(), other.private)

    def test_forged_peer_id_rejected(self):
        """The paper's step 7: claimed id must hash from the enclosed key.

        Mallory builds a login doc whose PeerId is alice's CBID but whose
        key/signature are mallory's."""
        doc = sl.build_login_document("alice", "pw", MALLORY, "m", "peer:m",
                                      scheme=SCHEME)
        doc.find("PeerId").text = str(cbid_from_key(ALICE.public))
        # re-sign so only the CBID check can catch it
        from repro.dsig import sign_element

        sign_element(doc, MALLORY.private, sig_alg=SCHEME)
        msg = sl.seal_login_request(doc, "sid", BROKER.public, SUITE, WRAP)
        with pytest.raises(CBIDMismatchError, match="claimed identifier"):
            sl.open_login_request(msg, BROKER.private)

    def test_tampered_username_rejected(self):
        """Integrity: the signature covers username+password+key."""
        doc = sl.build_login_document("alice", "pw", ALICE, "a", "peer:a",
                                      scheme=SCHEME)
        doc.find("Username").text = "root"
        msg = sl.seal_login_request(doc, "sid", BROKER.public, SUITE, WRAP)
        with pytest.raises(ClientAuthenticationError, match="signature"):
            sl.open_login_request(msg, BROKER.private)

    def test_garbage_envelope_rejected(self):
        msg = Message(sl.LOGIN_REQ)
        msg.add_json("envelope", {"suite": "chacha20poly1305"})
        with pytest.raises(ClientAuthenticationError):
            sl.open_login_request(msg, BROKER.private)

    def test_response_roundtrip(self):
        from repro.core.credentials import issue_credential

        cred = issue_credential(BROKER.private, cbid_from_key(BROKER.public),
                                "B0", ALICE.public, "alice", 0.0, 100.0)
        resp = sl.build_login_response(cred, ["g2", "g1"])
        restored, groups = sl.parse_login_response(
            Message.from_wire(resp.to_wire()))
        assert groups == ["g1", "g2"]
        assert restored.subject_name == "alice"

    def test_fail_response_raises(self):
        fail = Message(sl.LOGIN_FAIL)
        fail.add_text("reason", "nope")
        with pytest.raises(ClientAuthenticationError, match="nope"):
            sl.parse_login_response(fail)


class TestEndToEnd:
    def test_successful_login(self, secure_world):
        w = secure_world
        w.alice.secure_connect("broker:0")
        assert w.alice.secure_login("alice", "pw-a") == ["students"]
        assert w.alice.keystore.credential.subject_name == "alice"
        assert w.alice.username == "alice"
        assert w.alice.events.events_named("credential_issued")
        # broker session registered under the client's CBID
        assert str(w.alice.peer_id) in w.broker.connected

    def test_login_without_connect_rejected(self, secure_world):
        w = secure_world
        w.alice.broker_address = "broker:0"
        with pytest.raises(SecurityError):
            w.alice.secure_login("alice", "pw-a")

    def test_wrong_password_rejected(self, secure_world):
        w = secure_world
        w.alice.secure_connect("broker:0")
        with pytest.raises(ClientAuthenticationError, match="impersonator"):
            w.alice.secure_login("alice", "wrong")
        assert w.alice.username is None

    def test_sid_single_use_even_after_failure(self, secure_world):
        w = secure_world
        w.alice.secure_connect("broker:0")
        with pytest.raises(ClientAuthenticationError):
            w.alice.secure_login("alice", "wrong")
        # the sid was consumed client-side; retry needs a new connect
        with pytest.raises(SecurityError):
            w.alice.secure_login("alice", "pw-a")
        w.alice.secure_connect("broker:0")
        assert w.alice.secure_login("alice", "pw-a") == ["students"]

    def test_stale_sid_rejected_by_broker(self, secure_world):
        """A sid must be consumed by the broker exactly once."""
        w = secure_world
        w.alice.secure_connect("broker:0")
        sid = w.alice.sid
        w.alice.secure_login("alice", "pw-a")
        # hand-craft a second login reusing the same sid
        doc = sl.build_login_document(
            "alice", "pw-a", w.alice.keystore.keys, "alice-app",
            "peer:alice", scheme=w.alice.policy.signature_scheme)
        msg = sl.seal_login_request(
            doc, sid, w.broker.keystore.keys.public,
            w.alice.policy.envelope_suite, w.alice.policy.envelope_wrap)
        resp = w.alice.control.endpoint.request("broker:0", msg)
        assert resp.msg_type == sl.LOGIN_FAIL
        assert "aborted" in resp.get_text("reason")
        assert w.broker.sids.replays_blocked >= 1

    def test_pipes_signed_after_login(self, joined_secure_world):
        w = joined_secure_world
        hits = w.broker.control.cache.find(
            "PipeAdvertisement", peer_id=str(w.alice.peer_id))
        assert len(hits) == 1
        # validate the stored advertisement against the anchor
        from repro.core.signed_advertisement import AdvertisementValidator

        validator = AdvertisementValidator(w.admin.credential)
        result = validator.validate(hits[0].element, now=w.net.clock.now)
        assert result.credential.subject_name == "alice"

    def test_issued_credential_has_policy_lifetime(self, joined_secure_world):
        w = joined_secure_world
        cred = w.alice.keystore.credential
        assert cred.not_after - cred.not_before == pytest.approx(
            w.alice.policy.credential_lifetime)

    def test_credential_for_wrong_key_rejected_by_client(self, secure_world):
        """The client validates what the broker returns."""
        w = secure_world
        w.alice.secure_connect("broker:0")
        # sabotage: broker will issue for a different key via monkeypatch
        from repro.core.credentials import issue_credential

        original = w.broker.fn_secure_login

        def evil(message, src):
            resp = original(message, src)
            if resp.msg_type != sl.LOGIN_OK:
                return resp
            bogus = issue_credential(
                w.broker.keystore.keys.private, w.broker.keystore.cbid, "B0",
                cached_keypair(512, "client-mallory").public, "alice",
                0.0, 100.0)
            out = sl.build_login_response(bogus, ["students"])
            return out

        w.broker.control.endpoint._handlers[sl.LOGIN_REQ] = evil
        with pytest.raises(CredentialError):
            w.alice.secure_login("alice", "pw-a")
