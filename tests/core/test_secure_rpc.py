"""The generic secure request/response pattern behind the §6 extensions."""

import pytest

from repro.core.credentials import issue_credential, self_signed_credential
from repro.core.keystore import Keystore
from repro.core.policy import SecurityPolicy
from repro.core.secure_rpc import (
    open_signed_request,
    open_signed_response,
    seal_signed_request,
    seal_signed_response,
)
from repro.crypto import envelope
from repro.crypto.drbg import HmacDrbg
from repro.errors import SecurityError
from repro.jxta.ids import cbid_from_key
from repro.xmllib import Element
from tests.conftest import cached_keypair

ADMIN = cached_keypair(512, "admin")
BROKER = cached_keypair(512, "broker")
ALICE = cached_keypair(512, "client-alice")
BOB = cached_keypair(512, "client-bob")

POLICY = SecurityPolicy(rsa_bits=512, envelope_wrap=envelope.WRAP_V15).validate()
DRBG = HmacDrbg(b"rpc-tests")
AAD = b"test-rpc"


def _keystore(keys, name):
    anchor = self_signed_credential(ADMIN.private, ADMIN.public, "admin",
                                    0.0, 1e9)
    broker_cred = issue_credential(ADMIN.private, cbid_from_key(ADMIN.public),
                                   "admin", BROKER.public, "B0", 0.0, 1e8)
    cred = issue_credential(BROKER.private, cbid_from_key(BROKER.public), "B0",
                            keys.public, name, 0.0, 1e7)
    ks = Keystore(keys)
    ks.install_anchor(anchor)
    ks.install_chain([cred, broker_cred])
    return ks


@pytest.fixture()
def alice_ks():
    return _keystore(ALICE, "alice")


@pytest.fixture()
def bob_ks():
    return _keystore(BOB, "bob")


def _body():
    body = Element("FileRequest")
    body.add("FileName", text="f.txt")
    return body


class TestRequestPath:
    def test_roundtrip(self, alice_ks, bob_ks):
        env = seal_signed_request(_body(), alice_ks, BOB.public, POLICY,
                                  DRBG, AAD)
        opened = open_signed_request(env, bob_ks, now=1.0, aad=AAD,
                                     expected_body_tag="FileRequest")
        assert opened.requester.subject_name == "alice"
        assert opened.body.findtext("FileName") == "f.txt"

    def test_without_credential_rejected_at_seal(self, bob_ks):
        bare = Keystore(ALICE)
        with pytest.raises(SecurityError):
            seal_signed_request(_body(), bare, BOB.public, POLICY, DRBG, AAD)

    def test_wrong_recipient_cannot_open(self, alice_ks):
        env = seal_signed_request(_body(), alice_ks, BOB.public, POLICY,
                                  DRBG, AAD)
        other = _keystore(cached_keypair(512, "client-mallory"), "mallory")
        with pytest.raises(SecurityError):
            open_signed_request(env, other, now=1.0, aad=AAD,
                                expected_body_tag="FileRequest")

    def test_wrong_aad_rejected(self, alice_ks, bob_ks):
        env = seal_signed_request(_body(), alice_ks, BOB.public, POLICY,
                                  DRBG, b"jxta-overlay-secure-file-req")
        with pytest.raises(SecurityError):
            open_signed_request(env, bob_ks, now=1.0, aad=b"other-context",
                                expected_body_tag="FileRequest")

    def test_wrong_body_tag_rejected(self, alice_ks, bob_ks):
        env = seal_signed_request(_body(), alice_ks, BOB.public, POLICY,
                                  DRBG, AAD)
        with pytest.raises(SecurityError):
            open_signed_request(env, bob_ks, now=1.0, aad=AAD,
                                expected_body_tag="TaskRequest")

    def test_expired_requester_rejected(self, alice_ks, bob_ks):
        env = seal_signed_request(_body(), alice_ks, BOB.public, POLICY,
                                  DRBG, AAD)
        from repro.errors import CredentialError

        with pytest.raises((SecurityError, CredentialError)):
            open_signed_request(env, bob_ks, now=1e9, aad=AAD,
                                expected_body_tag="FileRequest")


class TestResponsePath:
    def test_roundtrip(self, alice_ks, bob_ks):
        body = Element("FileResponse")
        body.add("Content", text="payload")
        env = seal_signed_response(body, bob_ks.keys.private, ALICE.public,
                                   POLICY, DRBG, AAD)
        out = open_signed_response(env, alice_ks.keys.private, BOB.public,
                                   AAD, "FileResponse")
        assert out.findtext("Content") == "payload"

    def test_responder_signature_checked(self, alice_ks, bob_ks):
        body = Element("FileResponse")
        body.add("Content", text="payload")
        env = seal_signed_response(body, bob_ks.keys.private, ALICE.public,
                                   POLICY, DRBG, AAD)
        mallory = cached_keypair(512, "client-mallory")
        with pytest.raises(SecurityError):
            open_signed_response(env, alice_ks.keys.private, mallory.public,
                                 AAD, "FileResponse")
