"""Property-based tests on the secure protocol layer.

These drive random content through the full stack (hypothesis generates
texts, file bodies and sizes) and assert round-trip fidelity plus the
confidentiality invariant: *plaintext never appears in any wire frame*.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks import Eavesdropper
from tests.conftest import SecureWorld

# One world per module: hypothesis examples reuse it (function-scoped
# fixtures are suppressed below), so each example is just a message send.


@pytest.fixture(scope="module")
def world():
    w = SecureWorld()
    w.join_all()
    return w


# Text that XML can carry (no control chars other than whitespace).
_texts = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x2FA1,
                           blacklist_characters="\x7f"),
    min_size=0, max_size=500)


class TestSecureMessagingProperties:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(text=_texts)
    def test_roundtrip_fidelity(self, world, text):
        got = []

        def listener(**kw):
            got.append(kw)

        world.bob.events.subscribe("secure_message_received", listener)
        try:
            assert world.alice.secure_msg_peer(
                str(world.bob.peer_id), "students", text)
        finally:
            world.bob.events.unsubscribe("secure_message_received", listener)
        assert got and got[-1]["text"] == text
        assert got[-1]["from_user"] == "alice"

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(text=st.text(alphabet="abcdefghijklmnopqrstuvwxyz ",
                        min_size=24, max_size=200))
    def test_confidentiality_invariant(self, world, text):
        """No distinctive plaintext substring may cross the wire."""
        marker = "ZQXJ" + text[:40] + "JXQZ"
        spy = Eavesdropper().attach(world.net)
        try:
            world.alice.secure_msg_peer(str(world.bob.peer_id), "students",
                                        marker)
        finally:
            spy.detach(world.net)
        assert not spy.saw_text(marker)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.binary(min_size=0, max_size=20_000))
    def test_secure_file_roundtrip(self, world, data):
        world.alice.secure_publish_file("students", "prop.bin", data)
        fetched = world.bob.secure_request_file(
            str(world.alice.peer_id), "students", "prop.bin")
        assert fetched == data

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(argument=_texts)
    def test_secure_task_roundtrip(self, world, argument):
        world.alice.register_task("echo", lambda s: s)
        assert world.bob.secure_submit_task(
            str(world.alice.peer_id), "students", "echo", argument) == argument
