"""secureMsgPeer / secureMsgPeerGroup (§4.3)."""

import pytest

from repro.core import secure_messaging as sm
from repro.errors import PolicyError, PrimitiveError, TamperedMessageError
from repro.jxta.messages import Message
from tests.conftest import cached_keypair

ALICE = cached_keypair(512, "client-alice")
BOB = cached_keypair(512, "client-bob")

SUITE = "chacha20poly1305"
WRAP = "rsa-pkcs1v15"
SCHEME = "rsa-pss-sha256"


def _sealed(text="hi", group="g", nonce=b"n" * 16):
    payload = sm.build_payload("urn:jxta:cbid-" + "aa" * 16, group, text,
                               nonce, 1.0)
    return sm.seal_message(payload, ALICE.private, BOB.public,
                           SUITE, WRAP, SCHEME)


class TestCodecs:
    def test_roundtrip(self):
        msg = Message.from_wire(_sealed("hello world").to_wire())
        opened = sm.open_message(msg, BOB.private)
        assert opened.text == "hello world"
        assert opened.group == "g"
        opened.verify_sender(ALICE.public)

    def test_confidentiality(self):
        wire = _sealed("the secret plan").to_wire()
        assert b"the secret plan" not in wire

    def test_wrong_recipient_cannot_open(self):
        with pytest.raises(TamperedMessageError):
            sm.open_message(_sealed(), ALICE.private)

    def test_sender_verification_fails_for_wrong_key(self):
        opened = sm.open_message(_sealed(), BOB.private)
        with pytest.raises(TamperedMessageError):
            opened.verify_sender(BOB.public)

    def test_tampered_envelope_rejected(self):
        msg = _sealed()
        env = msg.get_json("envelope")
        body = env["body"]
        env["body"] = body[:10] + ("A" if body[10] != "A" else "B") + body[11:]
        tampered = Message(sm.SECURE_CHAT)
        tampered.add_json("envelope", env)
        with pytest.raises(TamperedMessageError):
            sm.open_message(tampered, BOB.private)

    def test_signature_swap_detected(self):
        """Substituting the signature of a different message must fail."""
        a = sm.open_message(_sealed("one"), BOB.private)
        b = sm.open_message(_sealed("two"), BOB.private)
        with pytest.raises(TamperedMessageError):
            # verify "one"'s payload against "two"'s signature
            sm.OpenedMessage(
                from_peer=a.from_peer, group=a.group, text=a.text,
                nonce=a.nonce, timestamp=a.timestamp, payload=a.payload,
                signature=b.signature, scheme=b.scheme,
            ).verify_sender(ALICE.public)


class TestEndToEnd:
    def test_secure_message_delivery(self, joined_secure_world):
        w = joined_secure_world
        got = []
        w.bob.events.subscribe("secure_message_received",
                               lambda **kw: got.append(kw))
        assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "hi bob")
        assert got[0]["text"] == "hi bob"
        assert got[0]["from_user"] == "alice"
        assert got[0]["from_peer"] == str(w.alice.peer_id)
        assert got[0]["group"] == "students"

    def test_plaintext_never_on_wire(self, joined_secure_world):
        from repro.attacks import Eavesdropper

        w = joined_secure_world
        spy = Eavesdropper().attach(w.net)
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students",
                                "extremely confidential")
        assert not spy.saw_text("extremely confidential")

    def test_group_send(self, joined_secure_world):
        w = joined_secure_world
        got = []
        w.bob.events.subscribe("secure_message_received",
                               lambda **kw: got.append(kw))
        assert w.alice.secure_msg_peer_group("students", "all hands") == 1
        assert got[0]["text"] == "all hands"

    def test_non_member_rejected(self, joined_secure_world):
        w = joined_secure_world
        with pytest.raises(PrimitiveError):
            w.alice.secure_msg_peer(str(w.carol.peer_id), "teachers", "x")

    def test_duplicate_nonce_rejected(self, joined_secure_world):
        """Replaying the captured ciphertext to the same recipient."""
        w = joined_secure_world
        captured = []
        original_send = w.net.send

        def capture(src, dst, payload):
            if b"secure_chat" in payload:
                captured.append((src, dst, payload))
            return original_send(src, dst, payload)

        w.net.send = capture
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "once")
        w.net.send = original_send
        assert captured
        src, dst, payload = captured[0]
        w.net.send("peer:mallory-addr", dst, payload)  # replay
        rejected = w.bob.events.events_named("message_rejected")
        assert any("replay" in e["reason"] or "nonce" in e["reason"]
                   for e in rejected)
        accepted = w.bob.events.events_named("secure_message_received")
        assert len(accepted) == 1

    def test_foreign_group_message_rejected(self, joined_secure_world):
        """carol (teachers) seals a message claiming group 'teachers' and
        fires it at bob's students pipe: bob is not in that group."""
        w = joined_secure_world
        opened_events = []
        w.bob.events.subscribe("message_rejected",
                               lambda **kw: opened_events.append(kw))
        payload = sm.build_payload(str(w.carol.peer_id), "teachers", "x",
                                   b"n" * 16, 1.0)
        msg = sm.seal_message(
            payload, w.carol.keystore.keys.private,
            w.bob.keystore.keys.public,
            w.carol.policy.envelope_suite, w.carol.policy.envelope_wrap,
            w.carol.policy.signature_scheme)
        pipe = w.bob.input_pipes["students"]
        outer = Message("pipe_data")
        outer.add_text("pipe_id", str(pipe.pipe_id))
        outer.add_xml("inner", msg.to_element())
        w.net.send("peer:carol", "peer:bob", outer.to_wire())
        assert any("not in" in e["reason"] for e in opened_events)

    def test_policy_enforce_blocks_plain_send(self, secure_world):
        w = secure_world
        w.alice.policy = w.alice.policy.with_(enforce_secure_messaging=True)
        w.alice.secure_connect("broker:0")
        w.alice.secure_login("alice", "pw-a")
        with pytest.raises(PolicyError):
            w.alice.send_msg_peer(str(w.bob.peer_id), "students", "x")

    def test_policy_enforce_rejects_incoming_plain(self, joined_secure_world):
        w = joined_secure_world
        w.bob.policy = w.bob.policy.with_(enforce_secure_messaging=True)
        w.alice.send_msg_peer(str(w.bob.peer_id), "students", "plain hi")
        assert not w.bob.events.events_named("message_received")
        assert any("policy" in e["reason"]
                   for e in w.bob.events.events_named("message_rejected"))

    def test_adv_validation_cached_across_messages(self, joined_secure_world):
        from repro import perf

        w = joined_secure_world
        with perf.flags(pipe_validation_memo=False):
            for i in range(3):
                w.alice.secure_msg_peer(str(w.bob.peer_id), "students", f"m{i}")
            assert w.alice.validator.cache_hits >= 2

    def test_adv_validation_memoized_across_messages(self, joined_secure_world):
        """With the pipe memo on (default), repeat sends skip the validator."""
        w = joined_secure_world
        for i in range(3):
            w.alice.secure_msg_peer(str(w.bob.peer_id), "students", f"m{i}")
        assert w.alice._validated_pipes  # memo holds bob's pipe
        # the memo sits above the digest cache, so the validator itself
        # is consulted exactly once (the miss) and never hits its cache
        assert w.alice.validator.cache_hits == 0
