"""Credentials and chains: the §4.1 trust setup."""

import pytest

from repro.core.credentials import (
    Credential,
    chain_from_elements,
    chain_to_elements,
    issue_credential,
    self_signed_credential,
    validate_chain,
)
from repro.crypto.drbg import HmacDrbg
from repro.errors import CBIDMismatchError, CredentialError
from repro.jxta.ids import cbid_from_key
from repro.xmllib import parse, serialize
from tests.conftest import cached_keypair

ADMIN = cached_keypair(512, "admin")
BROKER = cached_keypair(512, "broker")
CLIENT = cached_keypair(512, "client-alice")


@pytest.fixture()
def anchor():
    return self_signed_credential(ADMIN.private, ADMIN.public, "admin",
                                  0.0, 1e9, drbg=HmacDrbg(b"a"))


@pytest.fixture()
def broker_cred(anchor):
    return issue_credential(ADMIN.private, cbid_from_key(ADMIN.public), "admin",
                            BROKER.public, "B0", 0.0, 1e8, drbg=HmacDrbg(b"b"))


@pytest.fixture()
def client_cred(broker_cred):
    return issue_credential(BROKER.private, cbid_from_key(BROKER.public), "B0",
                            CLIENT.public, "alice", 0.0, 1e7, drbg=HmacDrbg(b"c"))


class TestIssuance:
    def test_subject_id_is_cbid_of_key(self, broker_cred):
        assert broker_cred.subject_id == cbid_from_key(BROKER.public)
        assert broker_cred.subject_name == "B0"
        assert broker_cred.issuer_name == "admin"

    def test_self_signed_detection(self, anchor, broker_cred):
        assert anchor.self_signed
        assert not broker_cred.self_signed

    def test_empty_window_rejected(self):
        with pytest.raises(CredentialError):
            issue_credential(ADMIN.private, cbid_from_key(ADMIN.public), "a",
                             BROKER.public, "b", 10.0, 10.0)


class TestCodec:
    def test_wire_roundtrip(self, broker_cred):
        restored = Credential.from_element(parse(serialize(broker_cred.element)))
        assert restored.subject_id == broker_cred.subject_id
        assert restored.public_key == broker_cred.public_key
        assert restored.not_after == broker_cred.not_after
        restored.verify(ADMIN.public, now=1.0)

    def test_wrong_root_rejected(self):
        from repro.xmllib import Element

        with pytest.raises(CredentialError):
            Credential.from_element(Element("NotACredential"))

    def test_missing_field_rejected(self, broker_cred):
        elem = broker_cred.to_element()
        elem.remove(elem.find("PublicKey"))
        with pytest.raises(CredentialError):
            Credential.from_element(elem)

    def test_bad_timestamp_rejected(self, broker_cred):
        elem = broker_cred.to_element()
        elem.find("NotAfter").text = "whenever"
        with pytest.raises(CredentialError):
            Credential.from_element(elem)


class TestVerification:
    def test_valid_credential_verifies(self, broker_cred):
        broker_cred.verify(ADMIN.public, now=100.0)

    def test_expired_rejected(self, broker_cred):
        with pytest.raises(CredentialError, match="expired"):
            broker_cred.verify(ADMIN.public, now=1e8 + 1)

    def test_not_yet_valid_rejected(self):
        cred = issue_credential(ADMIN.private, cbid_from_key(ADMIN.public), "a",
                                BROKER.public, "b", 100.0, 200.0)
        with pytest.raises(CredentialError, match="not yet valid"):
            cred.verify(ADMIN.public, now=50.0)

    def test_wrong_issuer_key_rejected(self, broker_cred):
        with pytest.raises(CredentialError):
            broker_cred.verify(BROKER.public, now=1.0)

    def test_tampered_subject_rejected(self, broker_cred):
        elem = broker_cred.to_element()
        elem.find("SubjectName").text = "evil-broker"
        tampered = Credential.from_element(elem)
        with pytest.raises(CredentialError):
            tampered.verify(ADMIN.public, now=1.0)

    def test_swapped_key_fails_cbid(self, broker_cred):
        from repro.crypto.keys import public_key_to_text

        elem = broker_cred.to_element()
        elem.find("PublicKey").text = public_key_to_text(CLIENT.public)
        swapped = Credential.from_element(elem)
        with pytest.raises(CBIDMismatchError):
            swapped.check_cbid()


class TestChains:
    def test_two_level_chain_validates(self, anchor, broker_cred, client_cred):
        leaf = validate_chain([client_cred, broker_cred], anchor, now=10.0)
        assert leaf.subject_name == "alice"

    def test_one_level_chain_validates(self, anchor, broker_cred):
        assert validate_chain([broker_cred], anchor, now=10.0).subject_name == "B0"

    def test_empty_chain_rejected(self, anchor):
        with pytest.raises(CredentialError):
            validate_chain([], anchor, now=0.0)

    def test_over_long_chain_rejected(self, anchor, broker_cred):
        with pytest.raises(CredentialError):
            validate_chain([broker_cred] * 5, anchor, now=0.0)

    def test_chain_not_rooted_at_anchor_rejected(self, broker_cred, client_cred):
        # forge a parallel "admin"
        fake_admin = cached_keypair(512, "fake-admin")
        fake_anchor = self_signed_credential(
            fake_admin.private, fake_admin.public, "fake", 0.0, 1e9)
        with pytest.raises(CredentialError):
            validate_chain([client_cred, broker_cred], fake_anchor, now=1.0)

    def test_broken_link_rejected(self, anchor, client_cred):
        # client credential chained directly to the anchor: the issuer id
        # does not match and the signature was not made by the admin
        with pytest.raises(CredentialError):
            validate_chain([client_cred], anchor, now=1.0)

    def test_expired_intermediate_rejected(self, anchor, client_cred):
        short_broker = issue_credential(
            ADMIN.private, cbid_from_key(ADMIN.public), "admin",
            BROKER.public, "B0", 0.0, 5.0)
        with pytest.raises(CredentialError, match="expired"):
            validate_chain([client_cred, short_broker], anchor, now=50.0)

    def test_chain_element_roundtrip(self, anchor, broker_cred, client_cred):
        elements = chain_to_elements([client_cred, broker_cred])
        restored = chain_from_elements(
            [parse(serialize(e)) for e in elements])
        validate_chain(restored, anchor, now=1.0)
