"""Broker-mediated group cast: mode parity, rotation, store-and-forward.

``policy.enable_group_cast`` switches ``secureMsgPeerGroup`` between the
paper's sender-iterated loop and the broker-mediated epoch-key path.
The switch must be invisible to the application: identical delivered
plaintexts, identical refusal taxonomy.  The cast-only machinery on top
— epoch rotation on membership change, stale-epoch retry, bounded
replay to reconnecting members — is covered here too.
"""

from __future__ import annotations

import contextlib

import pytest

from repro import obs
from repro.core import SecureBroker, SecureClientPeer
from repro.core.keystore import Keystore
from repro.errors import PrimitiveError
from tests.conftest import CAST_POLICY, CastWorld, SecureWorld, cached_keypair

GROUP = "game"


@contextlib.contextmanager
def fresh_registry():
    saved = obs.get_registry()
    registry = obs.set_registry(obs.Registry(enabled=True))
    try:
        yield registry
    finally:
        obs.set_registry(saved)


def _texts(client):
    return [e["text"] for e in client.events.events_named(
        "secure_message_received")]


def _shard_epoch(broker, group=GROUP):
    return broker.groupcast._shard(group).ring.epoch


def _second_broker(world, address="broker:1"):
    broker = SecureBroker.create(
        world.net, address, world.admin, world.root.fork(b"fed-b1"),
        name=address, policy=CAST_POLICY,
        keys=cached_keypair(512, "broker-b1"))
    world.broker.link_broker(broker)
    return broker


def _erin(world, broker_address="broker:1"):
    world.admin.register_user("erin", "pw-e", {"students"})
    erin = SecureClientPeer(
        world.net, "peer:erin", world.root.fork(b"erin"),
        world.admin.credential, name="erin-app", policy=CAST_POLICY,
        keystore=Keystore(cached_keypair(512, "client-erin")))
    erin.secure_connect(broker_address)
    erin.secure_login("erin", "pw-e")
    return erin


def _run_conversation(world):
    """The mode-parity script: create, join, chat in both directions."""
    world.alice.secure_create_group(GROUP)
    world.bob.secure_join_group(GROUP)
    world.alice.secure_msg_peer_group(GROUP, "first move")
    world.bob.secure_msg_peer_group(GROUP, "counter move")
    world.alice.secure_msg_peer_group(GROUP, "third move")
    return {name: sorted(_texts(getattr(world, name)))
            for name in ("alice", "bob", "carol")}


class TestModeParity:
    def test_delivered_plaintexts_identical(self):
        legacy, cast = SecureWorld(), CastWorld()
        legacy.join_all()
        cast.join_all()
        legacy_traces = _run_conversation(legacy)
        cast_traces = _run_conversation(cast)
        assert cast_traces == legacy_traces
        assert cast_traces["alice"] == ["counter move"]
        assert cast_traces["bob"] == ["first move", "third move"]
        assert cast_traces["carol"] == []

    def test_non_member_refused_identically(self):
        for world in (SecureWorld(), CastWorld()):
            world.join_all()
            world.alice.secure_create_group(GROUP)
            with pytest.raises(PrimitiveError):
                world.carol.secure_msg_peer_group(GROUP, "psst")

    def test_cast_sender_pays_one_uplink_frame(self, cast_world):
        world = cast_world
        world.alice.secure_create_group(GROUP)
        world.bob.secure_join_group(GROUP)
        world.carol.secure_join_group(GROUP)
        world.alice.secure_msg_peer_group(GROUP, "warm")  # absorb retry

        class UplinkTap:
            frames = 0

            def observe(self, frame):
                if frame.src == world.alice.address:
                    UplinkTap.frames += 1

        tap = UplinkTap()
        world.net.add_tap(tap)
        try:
            assert world.alice.secure_msg_peer_group(GROUP, "steady") == 2
        finally:
            world.net.remove_tap(tap)
        # one group_cast request regardless of member count; the fan-out
        # frames all originate at the broker
        assert UplinkTap.frames == 1


class TestEpochRotation:
    def test_membership_changes_rotate(self, cast_world):
        world = cast_world
        world.alice.secure_create_group(GROUP)
        created = _shard_epoch(world.broker)
        world.bob.secure_join_group(GROUP)
        joined = _shard_epoch(world.broker)
        world.bob.secure_leave_group(GROUP)
        left = _shard_epoch(world.broker)
        assert created >= 1
        assert joined == created + 1
        assert left == joined + 1

    def test_stale_sender_retries_once_and_succeeds(self, cast_world):
        world = cast_world
        world.alice.secure_create_group(GROUP)
        world.alice.secure_msg_peer_group(GROUP, "solo")
        world.bob.secure_join_group(GROUP)  # rotates; alice doesn't know
        assert world.alice.secure_msg_peer_group(GROUP, "hello bob") == 1
        assert world.alice.metrics.counters["client.group_cast_stale_retry"] == 1
        assert "hello bob" in _texts(world.bob)

    def test_leaver_cannot_read_later_frames(self, cast_world):
        world = cast_world
        world.alice.secure_create_group(GROUP)
        world.bob.secure_join_group(GROUP)
        world.carol.secure_join_group(GROUP)
        world.alice.secure_msg_peer_group(GROUP, "all three")
        world.carol.secure_leave_group(GROUP)
        carol_ring = world.carol.group_keys.get(GROUP)
        assert carol_ring is None  # client drops its key material on leave
        world.alice.secure_msg_peer_group(GROUP, "after carol left")
        assert "after carol left" in _texts(world.bob)
        assert "after carol left" not in _texts(world.carol)
        # and the broker refuses her as a sender now
        with pytest.raises(PrimitiveError):
            world.carol.secure_msg_peer_group(GROUP, "let me back in")


class TestStoreAndForward:
    def test_reconnect_replays_missed_frames(self, cast_world):
        world = cast_world
        world.alice.secure_create_group(GROUP)
        world.bob.secure_join_group(GROUP)
        world.alice.secure_msg_peer_group(GROUP, "seen live")
        assert "seen live" in _texts(world.bob)
        world.bob.logout()
        world.alice.secure_msg_peer_group(GROUP, "missed one")
        world.alice.secure_msg_peer_group(GROUP, "missed two")
        world.bob.secure_connect("broker:0")
        world.bob.secure_login("bob", "pw-b")
        replayed = world.bob.group_subscribe(GROUP)
        assert replayed == 2
        texts = _texts(world.bob)
        assert "missed one" in texts and "missed two" in texts

    def test_high_water_prevents_duplicate_replay(self, cast_world):
        world = cast_world
        world.alice.secure_create_group(GROUP)
        world.bob.secure_join_group(GROUP)
        world.alice.secure_msg_peer_group(GROUP, "once only")
        # re-subscribing with everything already seen replays nothing
        assert world.bob.group_subscribe(GROUP) == 0
        assert _texts(world.bob).count("once only") == 1

    def test_late_joiner_gets_no_history(self, cast_world):
        world = cast_world
        world.alice.secure_create_group(GROUP)
        world.bob.secure_join_group(GROUP)
        world.alice.secure_msg_peer_group(GROUP, "before carol")
        world.carol.secure_join_group(GROUP)
        # her entitlement floor is the join epoch: the stored frame is
        # from an older epoch and must not be replayed to her
        assert world.carol.group_subscribe(GROUP) == 0
        assert "before carol" not in _texts(world.carol)


class TestFederatedRelay:
    def test_cast_relays_to_remote_member(self, cast_world):
        world = cast_world
        _second_broker(world)
        erin = _erin(world)
        world.alice.secure_create_group(GROUP)
        erin.secure_join_group(GROUP)
        with fresh_registry() as registry:
            world.alice.secure_msg_peer_group(GROUP, "cross the ring")
            assert registry.count("groupcast.relayed") == 1
            assert registry.count("groupcast.relay.received") == 1
        assert "cross the ring" in _texts(erin)

    def test_remote_sender_reaches_home_members(self, cast_world):
        world = cast_world
        _second_broker(world)
        erin = _erin(world)
        world.alice.secure_create_group(GROUP)
        world.bob.secure_join_group(GROUP)
        erin.secure_join_group(GROUP)
        erin.secure_msg_peer_group(GROUP, "from the far side")
        assert "from the far side" in _texts(world.alice)
        assert "from the far side" in _texts(world.bob)
