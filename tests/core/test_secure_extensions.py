"""The §6 further-work extensions: secure file sharing and secure exec."""

import pytest

from repro.errors import SecurityError


class TestSecureFiles:
    def test_publish_search_fetch(self, joined_secure_world):
        w = joined_secure_world
        data = b"signed and sealed " * 200
        w.alice.secure_publish_file("students", "paper.pdf", data)
        offers = w.bob.secure_search_files(group="students")
        assert [o.file_name for o in offers] == ["paper.pdf"]
        fetched = w.bob.secure_request_file(str(w.alice.peer_id),
                                            "students", "paper.pdf")
        assert fetched == data
        assert w.bob.events.events_named("file_received")

    def test_content_encrypted_on_wire(self, joined_secure_world):
        from repro.attacks import Eavesdropper

        w = joined_secure_world
        w.alice.secure_publish_file("students", "s.txt", b"CONFIDENTIAL-BYTES")
        spy = Eavesdropper().attach(w.net)
        w.bob.secure_request_file(str(w.alice.peer_id), "students", "s.txt")
        assert not spy.saw_bytes(b"CONFIDENTIAL-BYTES")

    def test_unsigned_offers_filtered_from_secure_search(self, joined_secure_world):
        """A plain (unsigned) file advertisement in the index is invisible
        to secure_search_files."""
        from repro.jxta.advertisements import FileAdvertisement
        from repro.jxta.ids import random_peer_id

        w = joined_secure_world
        rogue = FileAdvertisement(
            peer_id=random_peer_id(w.root.fork(b"rg")), file_name="virus.exe",
            size=5, sha256_hex="00" * 32, group="students")
        w.broker.control.cache.publish_advertisement(rogue)
        offers = w.bob.secure_search_files(group="students")
        assert "virus.exe" not in [o.file_name for o in offers]

    def test_swapped_content_detected(self, joined_secure_world):
        w = joined_secure_world
        w.alice.secure_publish_file("students", "f.bin", b"original")
        w.bob.secure_search_files(group="students")  # cache the signed adv
        w.alice.files.add("f.bin", b"poisoned")
        with pytest.raises(SecurityError):
            w.bob.secure_request_file(str(w.alice.peer_id), "students", "f.bin")

    def test_requester_without_credential_rejected(self, joined_secure_world):
        w = joined_secure_world
        w.alice.secure_publish_file("students", "f", b"x")
        # bob forgets his credential chain
        w.bob.keystore.chain = []
        with pytest.raises(SecurityError):
            w.bob.secure_request_file(str(w.alice.peer_id), "students", "f")

    def test_unknown_file_refused(self, joined_secure_world):
        w = joined_secure_world
        with pytest.raises(SecurityError, match="no file named"):
            w.bob.secure_request_file(str(w.alice.peer_id), "students", "ghost")

    def test_served_metric(self, joined_secure_world):
        w = joined_secure_world
        w.alice.secure_publish_file("students", "f", b"x")
        w.bob.secure_request_file(str(w.alice.peer_id), "students", "f")
        assert w.alice.metrics.count("secure_file.served") == 1


class TestSecureTasks:
    def test_roundtrip(self, joined_secure_world):
        w = joined_secure_world
        w.alice.register_task("upper", lambda s: s.upper())
        assert w.bob.secure_submit_task(str(w.alice.peer_id), "students",
                                        "upper", "ping") == "PING"
        assert w.alice.metrics.count("secure_task.executed") == 1

    def test_acl_enforced(self, joined_secure_world):
        w = joined_secure_world
        w.alice.register_task("upper", lambda s: s.upper())
        w.alice.set_task_acl({"carol"})  # bob not allowed
        with pytest.raises(SecurityError, match="not authorized"):
            w.bob.secure_submit_task(str(w.alice.peer_id), "students",
                                     "upper", "x")
        assert w.alice.metrics.count("secure_task.unauthorized") == 1

    def test_acl_allows_listed_user(self, joined_secure_world):
        w = joined_secure_world
        w.alice.register_task("upper", lambda s: s.upper())
        w.alice.set_task_acl({"bob"})
        assert w.bob.secure_submit_task(str(w.alice.peer_id), "students",
                                        "upper", "x") == "X"

    def test_unknown_task_refused(self, joined_secure_world):
        w = joined_secure_world
        with pytest.raises(SecurityError, match="unknown task"):
            w.bob.secure_submit_task(str(w.alice.peer_id), "students",
                                     "ghost", "x")

    def test_crashing_task_contained(self, joined_secure_world):
        w = joined_secure_world

        def boom(arg):
            raise RuntimeError("kaput")

        w.alice.register_task("boom", boom)
        with pytest.raises(SecurityError, match="kaput"):
            w.bob.secure_submit_task(str(w.alice.peer_id), "students",
                                     "boom", "x")

    def test_argument_and_result_encrypted(self, joined_secure_world):
        from repro.attacks import Eavesdropper

        w = joined_secure_world
        w.alice.register_task("echo", lambda s: "RESULT-" + s)
        spy = Eavesdropper().attach(w.net)
        w.bob.secure_submit_task(str(w.alice.peer_id), "students",
                                 "echo", "SECRET-ARGUMENT")
        assert not spy.saw_text("SECRET-ARGUMENT")
        assert not spy.saw_text("RESULT-SECRET-ARGUMENT")

    def test_events_emitted(self, joined_secure_world):
        w = joined_secure_world
        w.alice.register_task("id", lambda s: s)
        w.bob.secure_submit_task(str(w.alice.peer_id), "students", "id", "v")
        assert w.bob.events.events_named("task_submitted")
        assert w.bob.events.events_named("task_result")
