"""Type-preserving signed advertisements (ref [15]) and their validator."""

import pytest

from repro.core.credentials import issue_credential, self_signed_credential
from repro.core.signed_advertisement import (
    AdvertisementValidator,
    sign_advertisement,
)
from repro.crypto.drbg import HmacDrbg
from repro.errors import (
    CBIDMismatchError,
    CredentialError,
    TamperedAdvertisementError,
)
from repro.jxta.advertisements import PipeAdvertisement
from repro.jxta.ids import cbid_from_key, random_pipe_id
from repro.xmllib import parse, serialize
from tests.conftest import cached_keypair

ADMIN = cached_keypair(512, "admin")
BROKER = cached_keypair(512, "broker")
ALICE = cached_keypair(512, "client-alice")
MALLORY = cached_keypair(512, "client-mallory")

RNG = HmacDrbg(b"sa-tests")


@pytest.fixture()
def anchor():
    return self_signed_credential(ADMIN.private, ADMIN.public, "admin", 0.0, 1e9)


@pytest.fixture()
def broker_cred():
    return issue_credential(ADMIN.private, cbid_from_key(ADMIN.public), "admin",
                            BROKER.public, "B0", 0.0, 1e8)


@pytest.fixture()
def alice_chain(broker_cred):
    alice_cred = issue_credential(
        BROKER.private, cbid_from_key(BROKER.public), "B0",
        ALICE.public, "alice", 0.0, 1e7)
    return [alice_cred, broker_cred]


@pytest.fixture()
def mallory_chain(broker_cred):
    mallory_cred = issue_credential(
        BROKER.private, cbid_from_key(BROKER.public), "B0",
        MALLORY.public, "mallory", 0.0, 1e7)
    return [mallory_cred, broker_cred]


def _alice_adv():
    return PipeAdvertisement(
        peer_id=cbid_from_key(ALICE.public), pipe_id=random_pipe_id(RNG),
        group="g", address="peer:alice").to_element()


@pytest.fixture()
def validator(anchor):
    return AdvertisementValidator(anchor)


class TestSignAndValidate:
    def test_type_preserved_and_validates(self, alice_chain, validator):
        elem = sign_advertisement(_alice_adv(), ALICE.private, alice_chain)
        assert elem.tag == "PipeAdvertisement"
        result = validator.validate(elem, now=1.0)
        assert result.credential.subject_name == "alice"
        assert isinstance(result.advertisement, PipeAdvertisement)

    def test_survives_wire_roundtrip(self, alice_chain, validator):
        elem = sign_advertisement(_alice_adv(), ALICE.private, alice_chain)
        received = parse(serialize(elem))
        validator.validate(received, now=1.0)

    def test_empty_chain_rejected_at_sign(self):
        with pytest.raises(CredentialError):
            sign_advertisement(_alice_adv(), ALICE.private, [])


class TestRejection:
    def test_unsigned_rejected(self, validator):
        with pytest.raises(TamperedAdvertisementError):
            validator.validate(_alice_adv(), now=1.0)

    def test_tampered_field_rejected(self, alice_chain, validator):
        elem = sign_advertisement(_alice_adv(), ALICE.private, alice_chain)
        elem.find("Address").text = "peer:attacker"
        with pytest.raises(TamperedAdvertisementError):
            validator.validate(elem, now=1.0)

    def test_forged_peer_id_rejected(self, mallory_chain, validator):
        """Mallory (legitimately credentialed!) signs an advertisement
        claiming alice's peer id — the CBID binding kills it."""
        forged = sign_advertisement(_alice_adv(), MALLORY.private, mallory_chain)
        with pytest.raises(CBIDMismatchError):
            validator.validate(forged, now=1.0)

    def test_wrong_key_for_chain_rejected(self, alice_chain, validator):
        # signed with mallory's key but alice's chain: SignatureValue fails
        elem = sign_advertisement(_alice_adv(), MALLORY.private, alice_chain)
        with pytest.raises(TamperedAdvertisementError):
            validator.validate(elem, now=1.0)

    def test_expired_credential_rejected(self, broker_cred, validator):
        short = issue_credential(
            BROKER.private, cbid_from_key(BROKER.public), "B0",
            ALICE.public, "alice", 0.0, 5.0)
        elem = sign_advertisement(_alice_adv(), ALICE.private, [short, broker_cred])
        validator.validate(elem, now=1.0)  # fine while fresh
        with pytest.raises(TamperedAdvertisementError):
            validator.validate(elem, now=100.0)

    def test_self_signed_client_chain_rejected(self, validator):
        """A client cannot vouch for itself: chain must root at the admin."""
        self_cred = self_signed_credential(ALICE.private, ALICE.public,
                                           "alice", 0.0, 1e9)
        elem = sign_advertisement(_alice_adv(), ALICE.private, [self_cred])
        with pytest.raises(TamperedAdvertisementError):
            validator.validate(elem, now=1.0)

    def test_missing_keyinfo_rejected(self, alice_chain, validator):
        from repro.dsig.transforms import find_signature

        elem = sign_advertisement(_alice_adv(), ALICE.private, alice_chain)
        sig = find_signature(elem)
        sig.children = [c for c in sig.children if c.tag != "KeyInfo"]
        with pytest.raises(TamperedAdvertisementError):
            validator.validate(elem, now=1.0)


class TestCache:
    def test_cache_hits_on_repeat(self, alice_chain, anchor):
        validator = AdvertisementValidator(anchor, enable_cache=True)
        elem = sign_advertisement(_alice_adv(), ALICE.private, alice_chain)
        validator.validate(elem, now=1.0)
        validator.validate(elem, now=2.0)
        assert validator.cache_hits == 1
        assert validator.cache_misses == 1

    def test_modified_adv_misses_cache(self, alice_chain, anchor):
        validator = AdvertisementValidator(anchor, enable_cache=True)
        elem = sign_advertisement(_alice_adv(), ALICE.private, alice_chain)
        validator.validate(elem, now=1.0)
        tampered = elem.deep_copy()
        tampered.find("Address").text = "peer:evil"
        with pytest.raises(TamperedAdvertisementError):
            validator.validate(tampered, now=1.0)

    def test_cached_entry_still_expires(self, broker_cred, anchor):
        validator = AdvertisementValidator(anchor, enable_cache=True)
        short = issue_credential(
            BROKER.private, cbid_from_key(BROKER.public), "B0",
            ALICE.public, "alice", 0.0, 5.0)
        elem = sign_advertisement(_alice_adv(), ALICE.private, [short, broker_cred])
        validator.validate(elem, now=1.0)
        with pytest.raises(TamperedAdvertisementError):
            validator.validate(elem, now=100.0)

    def test_cache_disabled(self, alice_chain, anchor):
        validator = AdvertisementValidator(anchor, enable_cache=False)
        elem = sign_advertisement(_alice_adv(), ALICE.private, alice_chain)
        validator.validate(elem, now=1.0)
        validator.validate(elem, now=1.0)
        assert validator.cache_hits == 0

    def test_invalidate(self, alice_chain, anchor):
        validator = AdvertisementValidator(anchor, enable_cache=True)
        elem = sign_advertisement(_alice_adv(), ALICE.private, alice_chain)
        validator.validate(elem, now=1.0)
        validator.invalidate()
        validator.validate(elem, now=1.0)
        assert validator.cache_misses == 2
