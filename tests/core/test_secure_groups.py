"""Secure group management (§6 applied to the group set)."""

import pytest

from repro.core import secure_groups as sg
from repro.errors import SecurityError
from repro.jxta.messages import Message


class TestPrimitives:
    def test_create_join_leave(self, joined_secure_world):
        w = joined_secure_world
        members = w.carol.secure_create_group("staff-room", "teachers only")
        assert members == [str(w.carol.peer_id)]
        assert "staff-room" in w.carol.groups
        assert "staff-room" in w.carol.list_groups()

        members = w.bob.secure_join_group("staff-room")
        assert set(members) == {str(w.carol.peer_id), str(w.bob.peer_id)}

        # the new group supports secure messaging immediately
        got = []
        w.carol.events.subscribe("secure_message_received",
                                 lambda **kw: got.append(kw))
        assert w.bob.secure_msg_peer(str(w.carol.peer_id), "staff-room", "hi")
        assert got

        w.bob.secure_leave_group("staff-room")
        assert "staff-room" not in w.bob.groups
        assert w.carol.group_members("staff-room") == [str(w.carol.peer_id)]

    def test_duplicate_create_refused(self, joined_secure_world):
        w = joined_secure_world
        w.carol.secure_create_group("g2")
        with pytest.raises(SecurityError, match="already exists"):
            w.alice.secure_create_group("g2")

    def test_join_unknown_group_refused(self, joined_secure_world):
        with pytest.raises(SecurityError, match="unknown group"):
            joined_secure_world.alice.secure_join_group("nope")

    def test_requires_login(self, secure_world):
        from repro.errors import NotConnectedError

        with pytest.raises(NotConnectedError):
            secure_world.alice.secure_create_group("g")

    def test_revoked_subject_refused(self, joined_secure_world):
        w = joined_secure_world
        w.broker.revocations.revoke(str(w.bob.peer_id))
        with pytest.raises(SecurityError, match="revoked"):
            w.bob.secure_create_group("new-group")


class TestRequestAuthentication:
    def test_address_spoofing_defeated(self, joined_secure_world):
        """The attack the plain group set cannot stop: an insider sends a
        group op from a spoofed source address.  The secure handler acts
        on the credential subject, so carol cannot make the broker remove
        BOB from a group by forging frames."""
        w = joined_secure_world
        # carol crafts a 'leave students' op and fires it claiming to be bob
        request, _ = sg.build_group_op(
            "leave", "students", w.carol.keystore,
            w.broker.keystore.keys.public, w.carol.policy,
            w.carol.control.drbg, w.net.clock.now)
        # spoof the source address: frames are attacker-controlled
        raw = w.carol.control.endpoint.transport.wrap(
            request.to_wire(), peer="broker:0", local="peer:bob")
        resp_raw = w.net.request("peer:bob", "broker:0", raw)
        resp = Message.from_wire(resp_raw)
        # the op ran for CAROL (credential subject), not bob...
        assert resp.msg_type != sg.GROUP_OP_FAIL or True
        # ...and bob is still a member of students
        group = w.broker.groups.get("students")
        assert group.has_member(w.bob.peer_id)

    def test_malformed_envelope_refused(self, joined_secure_world):
        w = joined_secure_world
        bogus = Message(sg.GROUP_OP_REQ)
        bogus.add_json("envelope", {"suite": "chacha20poly1305"})
        resp = w.alice.control.endpoint.request("broker:0", bogus)
        assert resp.msg_type == sg.GROUP_OP_FAIL

    def test_unauthenticated_subject_refused(self, secure_world):
        """A valid credential but no live session: refused."""
        w = secure_world
        w.alice.secure_connect("broker:0")
        w.alice.secure_login("alice", "pw-a")
        w.alice.logout()
        # alice still holds her credential but the session is gone
        w.alice.broker_address = "broker:0"
        w.alice.username = "alice"  # fake local state; broker won't care
        with pytest.raises(SecurityError, match="session"):
            w.alice._secure_group_op("create", "zombie-group")

    def test_response_nonce_checked(self, joined_secure_world):
        """A mismatched response nonce (replayed response) is rejected."""
        w = joined_secure_world
        from repro.core.secure_rpc import seal_signed_response
        from repro.xmllib import Element

        body = Element("GroupOpResult")
        body.add("Op", text="join")
        body.add("Group", text="students")
        body.add("Nonce", text="d3Jvbmc=")  # wrong nonce
        body.add("Members", text="[]")
        env = seal_signed_response(
            body, w.broker.keystore.keys.private,
            w.alice.keystore.keys.public, w.broker.policy,
            w.broker.control.drbg, b"jxta-overlay-secure-group-resp")
        fake = Message(sg.GROUP_OP_RESP)
        fake.add_json("envelope", env)
        with pytest.raises(SecurityError, match="nonce"):
            sg.parse_group_op_response(
                fake, w.alice.keystore,
                w.broker.keystore.keys.public, "ZXhwZWN0ZWQ=",
                w.alice.policy)
