"""Authenticated federation: signed frames, rogue-broker rejection."""

from __future__ import annotations

import contextlib

import pytest

from repro import obs
from repro.core import SecureBroker, SecureClientPeer
from repro.core.keystore import Keystore
from repro.core.secure_connection import pack_chain
from repro.core.secure_federation import SEAL_ELEMS, signable_bytes
from repro.crypto import signing
from repro.errors import NetworkError
from repro.jxta.advertisements import FileAdvertisement
from repro.jxta.messages import Message
from tests.conftest import TEST_POLICY, cached_keypair


@contextlib.contextmanager
def fresh_registry():
    saved = obs.get_registry()
    registry = obs.set_registry(obs.Registry(enabled=True))
    try:
        yield registry
    finally:
        obs.set_registry(saved)


def _second_broker(world, address="broker:1", key_label="broker-b1"):
    broker = SecureBroker.create(
        world.net, address, world.admin, world.root.fork(b"fed-" + key_label.encode()),
        name=address, policy=TEST_POLICY,
        keys=cached_keypair(512, key_label))
    world.broker.link_broker(broker)
    return broker


def _erin(world, broker_address="broker:1"):
    world.admin.register_user("erin", "pw-e", {"students"})
    erin = SecureClientPeer(
        world.net, "peer:erin", world.root.fork(b"erin"),
        world.admin.credential, name="erin-app", policy=TEST_POLICY,
        keystore=Keystore(cached_keypair(512, "client-erin")))
    erin.secure_connect(broker_address)
    erin.secure_login("erin", "pw-e")
    return erin


class TestSecureLink:
    def test_link_exchanges_signed_rosters(self, secure_world):
        b1 = _second_broker(secure_world)
        fed0 = secure_world.broker.federation
        assert "broker:1" in fed0.members
        assert fed0.members["broker:1"].broker_id == str(b1.peer_id)
        assert "broker:0" in b1.federation.members

    def test_cross_broker_flow_through_redirects(self, joined_secure_world):
        world = joined_secure_world
        b1 = _second_broker(world)
        erin = _erin(world)
        erin.publish_file("students", "signed.txt", b"payload")
        files = world.alice.search_files(peer_id=str(erin.peer_id))
        assert "signed.txt" in {f.file_name for f in files}
        assert world.alice.peer_status(str(erin.peer_id))["online"]

    def test_index_stays_partitioned(self, joined_secure_world):
        world = joined_secure_world
        b1 = _second_broker(world)
        _erin(world)
        for broker in (world.broker, b1):
            for entry in broker.control.cache.find():
                assert broker.federation.owner_of(
                    str(entry.parsed.peer_id)) == broker.address


class TestRogueFrameRejection:
    def test_unsigned_index_sync_rejected_and_counted(self, joined_secure_world):
        world = joined_secure_world
        adv = FileAdvertisement(peer_id=world.bob.peer_id, file_name="evil",
                                size=1, sha256_hex="00", group="students")
        rogue = Message("index_sync")
        rogue.add_xml("adv", adv.to_element())
        with fresh_registry() as registry:
            world.alice.control.endpoint.send("broker:0", rogue)
            assert registry.count("fed.reject.unsigned") == 1
        assert not world.broker.control.cache.find(
            "FileAdvertisement", peer_id=str(world.bob.peer_id))

    def test_unsigned_fed_delta_rejected(self, joined_secure_world):
        from repro.overlay.control import pack_results

        world = joined_secure_world
        adv = FileAdvertisement(peer_id=world.bob.peer_id, file_name="evil",
                                size=1, sha256_hex="00", group="students")
        rogue = Message("fed_delta")
        rogue.add_xml("advs", pack_results([adv.to_element()]))
        with fresh_registry() as registry:
            with pytest.raises(NetworkError):  # handler answers nothing
                world.alice.control.endpoint.request("broker:0", rogue)
            assert registry.count("fed.reject.unsigned") == 1
        assert not world.broker.control.cache.find(
            "FileAdvertisement", peer_id=str(world.bob.peer_id))

    def test_client_credential_chain_rejected(self, joined_secure_world):
        """A logged-in client's valid chain (length 2) must not federate."""
        from repro.overlay.control import pack_results

        world = joined_secure_world
        client = world.alice
        adv = FileAdvertisement(peer_id=world.bob.peer_id, file_name="evil",
                                size=1, sha256_hex="00", group="students")
        forged = Message("fed_delta")
        forged.add_xml("advs", pack_results([adv.to_element()]))
        forged.add_text("fed_from", client.address)
        forged.add_text("fed_scheme", TEST_POLICY.signature_scheme)
        forged.add_xml("fed_chain", pack_chain(client.keystore.chain))
        forged.add_bytes("fed_sig", signing.sign(
            client.keystore.keys.private,
            signable_bytes(forged, client.address),
            scheme=TEST_POLICY.signature_scheme, drbg=client.control.drbg))
        with fresh_registry() as registry:
            with pytest.raises(NetworkError):
                client.control.endpoint.request("broker:0", forged)
            assert registry.count("fed.reject.bad_chain") == 1
        assert not world.broker.control.cache.find(
            "FileAdvertisement", peer_id=str(world.bob.peer_id))

    def test_replay_from_wrong_address_rejected(self, joined_secure_world):
        """A frame sealed by a real broker fails when replayed elsewhere."""
        world = joined_secure_world
        b1 = _second_broker(world)
        real = Message("fed_members")
        real.add_json("members", b1.federation.roster())
        real = b1.federation.seal(real)
        assert all(real.has(name) for name in SEAL_ELEMS)
        # Replay the legitimately sealed frame from a rogue endpoint:
        # fed_from != src.
        with fresh_registry() as registry:
            world.alice.control.endpoint.send("broker:0", real)
            assert registry.count("fed.reject.malformed") == 1

    def test_tampered_signature_rejected(self, joined_secure_world):
        world = joined_secure_world
        b1 = _second_broker(world)
        frame = Message("fed_unlink")
        frame.add_text("fed_from", b1.address)
        frame.add_text("fed_scheme", TEST_POLICY.signature_scheme)
        frame.add_xml("fed_chain", pack_chain(b1.keystore.chain))
        frame.add_bytes("fed_sig", b"\x00" * 64)
        with fresh_registry() as registry:
            b1.control.endpoint.send("broker:0", frame)
            assert registry.count("fed.reject.bad_signature") == 1
        assert "broker:1" in world.broker.federation.members  # unlink ignored
