"""Client-level fast paths: seal_many fan-out, resumption, recovery.

The ablation contract: every scenario here must ALSO hold with the fast
paths disabled (the paper-faithful baseline) and in *mixed* deployments
— a fast sender talking to a baseline receiver and vice versa — because
the receiver-side resumption store is a protocol capability, not a
policy choice.
"""

import pytest

from repro import obs
from tests.conftest import SecureWorld, TEST_POLICY

BASELINE_POLICY = TEST_POLICY.with_(enable_seal_many=False,
                                    enable_resumption=False)


class BaselineWorld(SecureWorld):
    POLICY = BASELINE_POLICY


@pytest.fixture()
def registry():
    registry = obs.Registry(enabled=True)
    saved = obs.set_registry(registry)
    yield registry
    obs.set_registry(saved)


def _rsa_ops(registry):
    return (registry.count("crypto.rsa.private_op"),
            registry.count("crypto.rsa.public_op"),
            registry.count("crypto.rsa.verify_op"))


def _received_texts(client):
    return [e["text"] for e in client.events.events_named(
        "secure_message_received")]


class TestResumedChat:
    def test_steady_state_sends_cost_zero_rsa(self, joined_secure_world,
                                              registry):
        w = joined_secure_world
        assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "first")
        before = _rsa_ops(registry)
        for i in range(5):
            assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students",
                                           f"steady {i}")
        assert _rsa_ops(registry) == before
        assert _received_texts(w.bob) == ["first"] + [f"steady {i}"
                                                      for i in range(5)]

    def test_resumed_messages_attribute_to_sender(self, joined_secure_world):
        w = joined_secure_world
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "establish")
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "resumed")
        received = w.bob.events.events_named("secure_message_received")
        assert {e["from_user"] for e in received} == {"alice"}
        assert {e["from_peer"] for e in received} == {str(w.alice.peer_id)}

    def test_receiver_losing_store_triggers_rekey_resend(
            self, joined_secure_world):
        """The resume_reset path: a receiver that cannot map a resumed
        frame asks the sender to re-key; the sender resends the same
        payload as a full signed envelope — nothing is lost."""
        w = joined_secure_world
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "establish")
        w.bob.resume_store.invalidate()        # simulated receiver restart
        assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students",
                                       "after restart")
        assert _received_texts(w.bob) == ["establish", "after restart"]
        assert w.alice.metrics.count("client.resume_fallback") == 1
        # and the re-keyed session carries the next message with 0 RSA
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "resumed again")
        assert _received_texts(w.bob)[-1] == "resumed again"

    def test_forged_reset_only_downgrades(self, joined_secure_world):
        """A reset for a sid we never minted is ignored; a forged reset
        for a real sid merely forces one extra full envelope."""
        w = joined_secure_world
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "establish")
        assert len(w.alice.resume_sessions) == 1
        from repro.core import secure_messaging as sm
        from repro.jxta.messages import Message
        bogus = Message(sm.RESUME_RESET)
        bogus.add_text("sid", "f" * 32)
        w.alice._fn_resume_reset(bogus, "peer:mallory")
        assert len(w.alice.resume_sessions) == 1  # unknown sid ignored
        assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "still ok")
        assert _received_texts(w.bob)[-1] == "still ok"


class TestGroupFanOut:
    def test_one_signature_for_the_whole_group(self, joined_secure_world,
                                               registry):
        w = joined_secure_world
        delivered = w.alice.secure_msg_peer_group("students", "to everyone")
        assert int(delivered) == 1            # students = alice + bob
        # 1 sign + 1 unwrap (bob) — not one sign per member
        private, public, _ = _rsa_ops(registry)
        assert private == 2 and public == 1
        assert _received_texts(w.bob) == ["to everyone"]

    def test_second_group_send_is_fully_resumed(self, joined_secure_world,
                                                registry):
        w = joined_secure_world
        w.alice.secure_msg_peer_group("students", "one")
        before = _rsa_ops(registry)
        w.alice.secure_msg_peer_group("students", "two")
        assert _rsa_ops(registry) == before
        assert _received_texts(w.bob) == ["one", "two"]


class TestMixedPolicyInterop:
    def test_fast_sender_baseline_receiver(self, joined_secure_world):
        w = joined_secure_world
        w.bob.policy = BASELINE_POLICY        # bob will never mint sessions
        for i in range(3):
            assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students",
                                           f"m{i}")
        assert _received_texts(w.bob) == ["m0", "m1", "m2"]

    def test_baseline_sender_fast_receiver(self, joined_secure_world,
                                           registry):
        w = joined_secure_world
        w.alice.policy = BASELINE_POLICY
        for i in range(3):
            assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students",
                                           f"m{i}")
        assert _received_texts(w.bob) == ["m0", "m1", "m2"]
        assert registry.count("crypto.resume.seal") == 0  # nothing resumed

    def test_baseline_world_end_to_end(self):
        """Full ablation: both fast paths off reproduces the paper's
        stateless behavior — every message is an independent envelope."""
        w = BaselineWorld()
        w.join_all()
        registry = obs.Registry(enabled=True)
        saved = obs.set_registry(registry)
        try:
            for i in range(3):
                assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students",
                                               f"m{i}")
        finally:
            obs.set_registry(saved)
        assert _received_texts(w.bob) == ["m0", "m1", "m2"]
        assert registry.count("crypto.envelope.seal") == 3
        assert registry.count("crypto.envelope.seal_many") == 0
        assert registry.count("crypto.resume.seal") == 0


class TestChunkedFileTransfer:
    def test_large_file_roundtrip_with_resumed_chunks(self,
                                                      joined_secure_world,
                                                      registry):
        from repro.core import secure_filesharing as sf

        w = joined_secure_world
        data = bytes(range(256)) * 512        # 128 KiB = 4 chunks
        w.alice.secure_publish_file("students", "big.bin", data)
        w.bob.secure_search_files(group="students")
        fetched = w.bob.secure_request_file(str(w.alice.peer_id), "students",
                                            "big.bin")
        assert fetched == data
        # RSA only on the establishing chunk; later chunks are resumed
        # in BOTH directions.
        assert registry.count("crypto.resume.seal") >= 2 * (
            len(data) // sf.CHUNK_SIZE - 1)

    def test_small_file_still_roundtrips(self, joined_secure_world):
        w = joined_secure_world
        w.alice.secure_publish_file("students", "tiny.txt", b"tiny")
        w.bob.secure_search_files(group="students")
        assert w.bob.secure_request_file(str(w.alice.peer_id), "students",
                                         "tiny.txt") == b"tiny"

    def test_baseline_world_file_roundtrip(self):
        w = BaselineWorld()
        w.join_all()
        data = b"chunkless " * 6000           # > CHUNK_SIZE, single response
        w.alice.secure_publish_file("students", "whole.bin", data)
        w.bob.secure_search_files(group="students")
        assert w.bob.secure_request_file(str(w.alice.peer_id), "students",
                                         "whole.bin") == data


class TestFileTransferRekey:
    """Mid-transfer session loss on either side must cost one re-keyed
    chunk, never a failed transfer (REVIEW: _chunked_secure_fetch had no
    recovery when the owner forgot the requester's session)."""

    DATA = bytes(range(256)) * 512            # 128 KiB = 4 chunks

    def _publish_and_prime(self, w):
        w.alice.secure_publish_file("students", "big.bin", self.DATA)
        w.bob.secure_search_files(group="students")
        # first transfer establishes the sessions in both directions
        assert w.bob.secure_request_file(str(w.alice.peer_id), "students",
                                         "big.bin") == self.DATA

    def test_owner_forgetting_requester_session_recovers(
            self, joined_secure_world):
        w = joined_secure_world
        self._publish_and_prime(w)
        w.alice.resume_store.invalidate()     # owner restart / LRU eviction
        assert w.bob.secure_request_file(str(w.alice.peer_id), "students",
                                         "big.bin") == self.DATA
        assert w.bob.metrics.count("client.file_resume_fallback") == 1
        # re-keyed sessions carry a third transfer without falling back
        assert w.bob.secure_request_file(str(w.alice.peer_id), "students",
                                         "big.bin") == self.DATA
        assert w.bob.metrics.count("client.file_resume_fallback") == 1

    def test_requester_losing_response_session_recovers(
            self, joined_secure_world):
        w = joined_secure_world
        self._publish_and_prime(w)
        w.bob.resume_store.invalidate()       # requester restart
        assert w.bob.secure_request_file(str(w.alice.peer_id), "students",
                                         "big.bin") == self.DATA
        assert w.bob.metrics.count("client.file_resume_fallback") >= 1
        assert w.bob.secure_request_file(str(w.alice.peer_id), "students",
                                         "big.bin") == self.DATA

    def test_both_sides_losing_state_recovers(self, joined_secure_world):
        w = joined_secure_world
        self._publish_and_prime(w)
        w.alice.resume_store.invalidate()
        w.alice.resume_sessions.invalidate(
            w.bob.keystore.keys.public.fingerprint().hex())
        w.bob.resume_store.invalidate()
        w.bob.resume_sessions.invalidate(
            w.alice.keystore.keys.public.fingerprint().hex())
        assert w.bob.secure_request_file(str(w.alice.peer_id), "students",
                                         "big.bin") == self.DATA


class TestSeedBinding:
    """The signed-commitment defence: a resumption seed roots a session
    only when the sender's signature covers a commitment to it.  Any CEK
    holder can re-wrap ``CEK || seed'`` to a third peer while reusing
    the genuinely signed payload — the commitment check must refuse it."""

    def _sealed_resumable(self, sender_kp, recipient_kps):
        from repro.core import secure_messaging as sm
        from repro.crypto import envelope, signing
        from repro.crypto.drbg import HmacDrbg

        payload = sm.build_payload(
            from_peer="peer:attacker-test", group="g", text="hi",
            nonce=b"\x01" * 16, timestamp=0.0)
        message, seeds = sm.seal_message_fast(
            payload, sender_kp.private, [kp.public for kp in recipient_kps],
            suite="chacha20poly1305", wrap=envelope.WRAP_V15,
            scheme=signing.SCHEME_V15, drbg=HmacDrbg(b"seed-binding"),
            resumable=True)
        return message.get_json("envelope"), seeds

    @staticmethod
    def _unwrap_cek(env, kp):
        from repro.crypto import pkcs1
        from repro.utils.encoding import b64decode

        fp = kp.public.fingerprint().hex()
        blob = pkcs1.decrypt_v15(kp.private, b64decode(env["wrapped_keys"][fp]))
        return blob[:32], blob[32:]

    @staticmethod
    def _open_as(env, kp):
        from repro.core import secure_messaging as sm
        from repro.jxta.messages import Message

        forged = Message(sm.SECURE_CHAT)
        forged.add_json("envelope", env)
        return sm.open_message(forged, kp.private)

    def test_legit_recipient_gets_committed_seed(self):
        from tests.conftest import cached_keypair

        alice = cached_keypair(512, "seedbind-alice")
        bob = cached_keypair(512, "seedbind-bob")
        env, seeds = self._sealed_resumable(alice, [bob])
        opened = self._open_as(env, bob)
        assert opened.resume_seed == seeds[bob.public.fingerprint().hex()]

    def test_rewrapped_attacker_seed_rejected(self):
        from repro.crypto import pkcs1
        from repro.crypto.drbg import HmacDrbg
        from repro.errors import TamperedMessageError
        from repro.utils.encoding import b64encode
        from tests.conftest import cached_keypair

        alice = cached_keypair(512, "seedbind-alice")
        mallory = cached_keypair(512, "seedbind-mallory")
        bob = cached_keypair(512, "seedbind-bob")
        env, seeds = self._sealed_resumable(alice, [mallory])
        # Mallory, the legitimate recipient, extracts the shared CEK and
        # re-targets the signed envelope at bob with a seed she knows.
        cek, seed_m = self._unwrap_cek(env, mallory)
        assert seed_m == seeds[mallory.public.fingerprint().hex()]
        forged = dict(env)
        for evil_seed in (b"\xee" * 16, seed_m):  # fresh or her own seed
            forged["wrapped_keys"] = {
                bob.public.fingerprint().hex(): b64encode(pkcs1.encrypt_v15(
                    bob.public, cek + evil_seed, drbg=HmacDrbg(b"evil")))}
            with pytest.raises(TamperedMessageError):
                self._open_as(forged, bob)

    def test_corecipient_cannot_plant_seed_on_group_member(self):
        from repro.crypto import pkcs1
        from repro.crypto.drbg import HmacDrbg
        from repro.errors import TamperedMessageError
        from repro.utils.encoding import b64encode
        from tests.conftest import cached_keypair

        alice = cached_keypair(512, "seedbind-alice")
        mallory = cached_keypair(512, "seedbind-mallory")
        bob = cached_keypair(512, "seedbind-bob")
        env, _seeds = self._sealed_resumable(alice, [mallory, bob])
        cek, seed_m = self._unwrap_cek(env, mallory)
        forged = dict(env)
        forged["wrapped_keys"] = dict(env["wrapped_keys"])
        forged["wrapped_keys"][bob.public.fingerprint().hex()] = b64encode(
            pkcs1.encrypt_v15(bob.public, cek + seed_m, drbg=HmacDrbg(b"evil")))
        with pytest.raises(TamperedMessageError):
            self._open_as(forged, bob)
        # the untouched entry still opens for bob in the original envelope
        assert self._open_as(env, bob).text == "hi"


class TestSendFailureSessionHygiene:
    def test_group_member_missing_delivery_gets_no_session(
            self, joined_secure_world):
        w = joined_secure_world
        real_send = w.alice._send_sealed_frame
        w.alice._send_sealed_frame = lambda *a, **kw: False
        try:
            assert w.alice.secure_msg_peer_group("students", "lost") == 0
            assert len(w.alice.resume_sessions) == 0  # no poisoned session
        finally:
            w.alice._send_sealed_frame = real_send
        # delivery restored: the next fan-out re-keys cleanly, no reset trip
        assert w.alice.secure_msg_peer_group("students", "ok") == 1
        assert _received_texts(w.bob) == ["ok"]
        assert w.alice.metrics.count("client.resume_fallback") == 0

    def test_single_peer_failed_establish_gets_no_session(
            self, joined_secure_world):
        w = joined_secure_world
        real_send = w.alice._send_sealed_frame
        w.alice._send_sealed_frame = lambda *a, **kw: False
        try:
            assert not w.alice.secure_msg_peer(str(w.bob.peer_id), "students",
                                               "lost")
            assert len(w.alice.resume_sessions) == 0
        finally:
            w.alice._send_sealed_frame = real_send
        assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "ok")
        assert _received_texts(w.bob) == ["ok"]


class TestTrustCacheFlush:
    def test_revocation_flush_clears_fast_path_state(self,
                                                     joined_secure_world):
        w = joined_secure_world
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "warm")
        assert len(w.alice.resume_sessions) == 1
        assert len(w.bob.resume_store) == 1
        w.alice._flush_trust_caches()
        w.bob._flush_trust_caches()
        assert len(w.alice.resume_sessions) == 0
        assert len(w.bob.resume_store) == 0
        # messaging recovers by re-keying transparently
        assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students",
                                       "re-keyed")
        assert _received_texts(w.bob)[-1] == "re-keyed"
