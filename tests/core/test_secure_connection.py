"""secureConnection (§4.2.1): protocol codecs and the full exchange."""

import pytest

from repro.core import secure_connection as sc
from repro.core.credentials import issue_credential, self_signed_credential
from repro.crypto.drbg import HmacDrbg
from repro.errors import BrokerAuthenticationError
from repro.jxta.ids import cbid_from_key
from tests.conftest import cached_keypair

ADMIN = cached_keypair(512, "admin")
BROKER = cached_keypair(512, "broker")
FAKE = cached_keypair(512, "fake-admin")


@pytest.fixture()
def anchor():
    return self_signed_credential(ADMIN.private, ADMIN.public, "admin", 0.0, 1e9)


@pytest.fixture()
def broker_chain():
    return [issue_credential(ADMIN.private, cbid_from_key(ADMIN.public), "admin",
                             BROKER.public, "B0", 0.0, 1e8)]


def _exchange(chall, sid, key, chain, scheme="rsa-pss-sha256"):
    return sc.build_connect_response(chall, sid, key, chain, scheme=scheme,
                                     drbg=HmacDrbg(b"resp"))


class TestChallenge:
    def test_random_and_sized(self):
        rng = HmacDrbg(b"ch")
        a = sc.build_challenge(rng, 32)
        b = sc.build_challenge(rng, 32)
        assert len(a) == 32 and a != b

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            sc.build_challenge(HmacDrbg(b"x"), 8)

    def test_request_roundtrip(self):
        chall = b"c" * 32
        from repro.jxta.messages import Message

        req = sc.build_connect_request(chall)
        assert sc.parse_connect_request(
            Message.from_wire(req.to_wire())) == chall


class TestVerifyResponse:
    def test_legitimate_broker_accepted(self, anchor, broker_chain):
        chall = b"c" * 32
        resp = _exchange(chall, "sid-1", BROKER.private, broker_chain)
        result = sc.verify_connect_response(resp, chall, anchor, now=1.0)
        assert result.sid == "sid-1"
        assert result.broker_credential.subject_name == "B0"

    def test_steps_6_forged_credential_rejected(self, anchor):
        """Step 6: a chain not signed by the admin -> not a legitimate broker."""
        forged_anchor = self_signed_credential(FAKE.private, FAKE.public,
                                               "fake", 0.0, 1e9)
        resp = _exchange(b"c" * 32, "sid", FAKE.private, [forged_anchor])
        with pytest.raises(BrokerAuthenticationError, match="not a legitimate"):
            sc.verify_connect_response(resp, b"c" * 32, anchor, now=1.0)

    def test_step_7_stolen_credential_rejected(self, anchor, broker_chain):
        """Step 7: valid credential but no SK_Br -> impersonator."""
        resp = _exchange(b"c" * 32, "sid", FAKE.private, broker_chain)
        with pytest.raises(BrokerAuthenticationError, match="impersonator"):
            sc.verify_connect_response(resp, b"c" * 32, anchor, now=1.0)

    def test_wrong_challenge_rejected(self, anchor, broker_chain):
        """A replayed response signed over some OTHER challenge."""
        resp = _exchange(b"old-challenge" * 3, "sid", BROKER.private, broker_chain)
        with pytest.raises(BrokerAuthenticationError):
            sc.verify_connect_response(resp, b"c" * 32, anchor, now=1.0)

    def test_expired_broker_credential_rejected(self, anchor):
        stale = [issue_credential(ADMIN.private, cbid_from_key(ADMIN.public),
                                  "admin", BROKER.public, "B0", 0.0, 5.0)]
        resp = _exchange(b"c" * 32, "sid", BROKER.private, stale)
        with pytest.raises(BrokerAuthenticationError):
            sc.verify_connect_response(resp, b"c" * 32, anchor, now=100.0)

    def test_empty_sid_rejected(self, anchor, broker_chain):
        resp = _exchange(b"c" * 32, "", BROKER.private, broker_chain)
        with pytest.raises(BrokerAuthenticationError, match="session id"):
            sc.verify_connect_response(resp, b"c" * 32, anchor, now=1.0)

    def test_fail_message_rejected(self, anchor):
        from repro.jxta.messages import Message

        fail = Message(sc.CONNECT_FAIL)
        with pytest.raises(BrokerAuthenticationError):
            sc.verify_connect_response(fail, b"c" * 32, anchor, now=1.0)

    def test_malformed_response_rejected(self, anchor):
        from repro.jxta.messages import Message

        garbage = Message(sc.CONNECT_RESP)
        garbage.add_text("sid", "x")
        with pytest.raises(BrokerAuthenticationError, match="malformed"):
            sc.verify_connect_response(garbage, b"c" * 32, anchor, now=1.0)


class TestEndToEnd:
    def test_against_secure_broker(self, secure_world):
        cred = secure_world.alice.secure_connect("broker:0")
        assert cred.subject_name == "B0"
        assert secure_world.alice.sid is not None
        assert secure_world.alice.events.events_named("connected")

    def test_sid_differs_per_connection(self, secure_world):
        secure_world.alice.secure_connect("broker:0")
        sid_a = secure_world.alice.sid
        secure_world.bob.secure_connect("broker:0")
        assert secure_world.bob.sid != sid_a

    def test_unreachable_broker(self, secure_world):
        with pytest.raises(BrokerAuthenticationError):
            secure_world.alice.secure_connect("broker:ghost")
        assert secure_world.alice.events.events_named("broker_rejected")
