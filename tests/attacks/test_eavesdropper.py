"""§2.3 threat 1: eavesdropping — works on plain, defeated by secure."""

from repro.attacks import Eavesdropper


class TestAgainstPlainPrimitives:
    def test_password_harvested_from_plain_login(self, plain_world):
        w = plain_world
        spy = Eavesdropper().attach(w.net)
        w.alice.connect("broker:0")
        w.alice.login("alice", "pw-a")
        assert spy.saw_text("pw-a")
        assert ("alice", "pw-a") in spy.harvest_credentials()

    def test_chat_text_readable(self, joined_plain_world):
        w = joined_plain_world
        spy = Eavesdropper().attach(w.net)
        w.alice.send_msg_peer(str(w.bob.peer_id), "students", "meet at noon")
        assert spy.saw_text("meet at noon")

    def test_file_content_readable(self, joined_plain_world):
        w = joined_plain_world
        w.alice.publish_file("students", "f.txt", b"PLAINTEXT-FILE-BYTES")
        spy = Eavesdropper().attach(w.net)
        w.bob.request_file(str(w.alice.peer_id), "students", "f.txt")
        # base64 of the content crosses the wire; decode and compare
        from repro.utils.encoding import b64encode

        assert spy.saw_text(b64encode(b"PLAINTEXT-FILE-BYTES"))


class TestAgainstSecurePrimitives:
    def test_password_never_visible(self, secure_world):
        w = secure_world
        spy = Eavesdropper().attach(w.net)
        w.alice.secure_connect("broker:0")
        w.alice.secure_login("alice", "pw-a")
        assert not spy.saw_text("pw-a")
        assert spy.harvest_credentials() == []
        assert len(spy) > 0  # it did watch the exchange

    def test_chat_text_hidden(self, joined_secure_world):
        w = joined_secure_world
        spy = Eavesdropper().attach(w.net)
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "meet at noon")
        assert not spy.saw_text("meet at noon")

    def test_detach_stops_observation(self, joined_secure_world):
        w = joined_secure_world
        spy = Eavesdropper().attach(w.net)
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "one")
        count = len(spy)
        spy.detach(w.net)
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "two")
        assert len(spy) == count

    def test_traffic_analysis_still_possible(self, joined_secure_world):
        """Honesty check: the scheme hides content, not metadata."""
        w = joined_secure_world
        spy = Eavesdropper().attach(w.net)
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "hidden")
        flows = spy.frames_between("peer:alice", "peer:bob")
        assert flows  # who-talks-to-whom is visible
        assert spy.total_bytes > 0
