"""Attack parity: every adversary behaves identically on both backends.

The §2.3 attack models were refactored onto the transport contract —
taps and interceptors install through
:func:`repro.net.adversary.adversary_surface`, active endpoints are
plain endpoints.  This suite runs each attack once on the discrete-
event simulator and once over real asyncio loopback sockets and pins
the *observable* outcomes equal:

* the eavesdropper harvests the same clear-text credentials;
* DNS spoofing routes the victim to the same fake broker, which
  harvests the same password;
* mid-flight credential tampering produces the same plain-login
  rejection;
* the login replayer gets the same ``secure_login_fail`` haul and
  trips the same ``fn.secure_login.replayed`` counter;
* a malformed-frame spray lands in the same ``wire.reject.*``
  taxonomy cells.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.attacks import (
    Eavesdropper,
    FakeBroker,
    LoginReplayer,
    TamperCampaign,
    byte_substitution,
    spoof_dns,
)
from repro.core import Administrator, SecureBroker, SecureClientPeer
from repro.core.keystore import Keystore
from repro.crypto.drbg import HmacDrbg
from repro.net.tcp import TcpTransport
from repro.overlay import Broker, ClientPeer
from repro.sim import SimNetwork, VirtualClock
from repro.wire import REGISTRY
from repro.wire.fuzz import mutations
from tests.conftest import TEST_POLICY, cached_keypair


def _wait_for(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _plain_attack_trace(net) -> dict:
    """Eavesdropping, DNS spoofing and tampering against the plain stack."""
    saved = obs.get_registry()
    obs.set_registry(obs.Registry(enabled=True))
    try:
        root = HmacDrbg(b"attack-parity-plain")
        admin = Administrator(root.fork(b"admin"),
                              keys=cached_keypair(512, "admin"))
        for user in ("alice", "bob", "carol"):
            admin.register_user(user, f"pw-{user}", {"students"})
        broker = Broker(net, "broker:0", admin.database, root.fork(b"br"))

        # Threat 1: passive eavesdropping harvests clear-text credentials.
        eaves = Eavesdropper().attach(net)
        alice = ClientPeer(net, "peer:alice", root.fork(b"al"))
        alice.connect("broker:0")
        alice.login("alice", "pw-alice")
        harvested = eaves.harvest_credentials()
        saw_password = eaves.saw_text("pw-alice")
        eaves.detach(net)

        # Threat 3: DNS spoofing routes bob to a fake broker.
        fake = FakeBroker(net, "broker:fake", root.fork(b"fk"))
        with TamperCampaign(net) as campaign:
            campaign.install(spoof_dns("broker:0", "broker:fake"))
            bob = ClientPeer(net, "peer:bob", root.fork(b"bo"))
            bob.connect("broker:0")
            bob.login("bob", "pw-bob")
        fake_harvest = list(fake.harvested)

        # Threat 2: mid-flight tampering; the broker sees the altered
        # password and rejects (the user cannot even tell why).
        with TamperCampaign(net) as campaign:
            campaign.install(byte_substitution(b"pw-carol", b"pw-wrong"))
            carol = ClientPeer(net, "peer:carol", root.fork(b"ca"))
            carol.connect("broker:0")
            try:
                carol.login("carol", "pw-carol")
                tamper_outcome = "accepted"
            except Exception as exc:
                tamper_outcome = type(exc).__name__
        rejected_logins = broker.metrics.count("fn.login.rejected")

        for node in (alice, bob, carol, broker):
            node.control.close()
        fake.endpoint.close()
        return {
            "harvested": harvested,
            "saw_password": saw_password,
            "fake_harvest": fake_harvest,
            "tamper_outcome": tamper_outcome,
            "rejected_logins": rejected_logins,
        }
    finally:
        obs.set_registry(saved)


def _secure_attack_trace(net) -> dict:
    """Replay and malformed-frame attacks against the secure stack."""
    saved = obs.get_registry()
    registry = obs.set_registry(obs.Registry(enabled=True))
    try:
        root = HmacDrbg(b"attack-parity-secure")
        admin = Administrator(root.fork(b"admin"),
                              keys=cached_keypair(512, "admin"))
        admin.register_user("alice", "pw-a", {"students"})
        broker = SecureBroker.create(
            net, "broker:0", admin, root.fork(b"br"), name="B0",
            policy=TEST_POLICY, keys=cached_keypair(512, "broker"))
        alice = SecureClientPeer(
            net, "peer:alice", root.fork(b"al"), admin.credential,
            name="alice-app", policy=TEST_POLICY,
            keystore=Keystore(cached_keypair(512, "client-alice")))

        # §4.2.2: record the sealed login off the wire, replay it verbatim.
        replayer = LoginReplayer(attacker_address="peer:mallory").attach(net)
        alice.secure_connect("broker:0")
        alice.secure_login("alice", "pw-a")
        responses = replayer.replay_all(net)
        replay_types = sorted(r.msg_type for r in responses)
        impersonations = len(LoginReplayer.successes(responses))
        replays_blocked = broker.metrics.count("fn.secure_login.replayed")

        # The fuzzer's malformed login frames die at the wire boundary.
        spray = mutations(REGISTRY["secure_login_req"])
        for _, malformed, _ in spray:
            net.send("peer:mallory", "broker:0", malformed.to_wire())
        assert _wait_for(lambda: sum(
            registry.count(name) for name in registry.metric_names()
            if name.startswith("wire.reject.secure_login_req."))
            == len(spray))
        rejects = {name: registry.count(name)
                   for name in registry.metric_names()
                   if name.startswith("wire.reject.")}

        alice.control.close()
        broker.control.close()
        return {
            "replay_types": replay_types,
            "impersonations": impersonations,
            "replays_blocked": replays_blocked,
            "rejects": rejects,
        }
    finally:
        obs.set_registry(saved)


@pytest.fixture(scope="module")
def plain_traces() -> tuple[dict, dict]:
    sim = _plain_attack_trace(SimNetwork(clock=VirtualClock()))
    with TcpTransport(request_timeout=30.0) as net:
        tcp = _plain_attack_trace(net)
    return sim, tcp


@pytest.fixture(scope="module")
def secure_traces() -> tuple[dict, dict]:
    sim = _secure_attack_trace(SimNetwork(clock=VirtualClock()))
    with TcpTransport(request_timeout=30.0) as net:
        tcp = _secure_attack_trace(net)
    return sim, tcp


class TestPlainAttackParity:
    def test_eavesdropper_harvests_identically(self, plain_traces):
        sim, tcp = plain_traces
        assert sim["harvested"] == [("alice", "pw-alice")]
        assert sim["harvested"] == tcp["harvested"]
        assert sim["saw_password"] and tcp["saw_password"]

    def test_dns_spoof_routes_to_fake_broker_on_both(self, plain_traces):
        sim, tcp = plain_traces
        assert sim["fake_harvest"] == [("bob", "pw-bob")]
        assert sim["fake_harvest"] == tcp["fake_harvest"]

    def test_tampered_login_rejected_identically(self, plain_traces):
        sim, tcp = plain_traces
        assert sim["tamper_outcome"] == tcp["tamper_outcome"]
        assert sim["rejected_logins"] == tcp["rejected_logins"] == 1

    def test_traces_identical(self, plain_traces):
        sim, tcp = plain_traces
        assert sim == tcp


class TestSecureAttackParity:
    def test_replay_blocked_identically(self, secure_traces):
        sim, tcp = secure_traces
        assert sim["impersonations"] == tcp["impersonations"] == 0
        assert sim["replays_blocked"] == tcp["replays_blocked"] == 1
        assert sim["replay_types"] == tcp["replay_types"]
        assert set(sim["replay_types"]) == {"secure_login_fail"}

    def test_wire_taxonomy_identical(self, secure_traces):
        sim, tcp = secure_traces
        assert sim["rejects"] == tcp["rejects"]
        assert any(name.startswith("wire.reject.secure_login_req.")
                   for name in sim["rejects"])

    def test_traces_identical(self, secure_traces):
        sim, tcp = secure_traces
        assert sim == tcp
