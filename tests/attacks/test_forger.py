"""§2.3 threat 2: advertisement forgery by a legitimate insider."""

import pytest

from repro.attacks import (
    forge_file_advertisement,
    forge_pipe_advertisement,
    forge_signed_advertisement,
    tamper_signed_advertisement,
)
from repro.errors import CBIDMismatchError, SecurityError, TamperedAdvertisementError
from repro.jxta.advertisements import PipeAdvertisement


class TestAgainstPlainOverlay:
    def test_pipe_hijack_succeeds(self, joined_plain_world):
        """Mallory (a legitimate user!) forges bob's pipe advertisement
        pointing at her own address, pushes it to alice, and receives
        alice's messages meant for bob."""
        w = joined_plain_world
        from repro.jxta.endpoint import Endpoint
        from repro.jxta.messages import Message

        stolen = []
        mallory = Endpoint(w.net, "peer:mallory")
        mallory.on("pipe_data", lambda m, s: stolen.append(
            Message.from_element(m.get_xml("inner"))) or None)

        forged = forge_pipe_advertisement(
            str(w.bob.peer_id), "students", "peer:mallory",
            w.root.fork(b"forge"))
        # push the forgery straight into alice's cache (adv_push is how
        # the overlay distributes advertisements anyway)
        push = Message("adv_push")
        push.add_xml("adv", forged)
        w.net.send("peer:mallory", "peer:alice", push.to_wire())

        w.alice.send_msg_peer(str(w.bob.peer_id), "students", "for bob only")
        assert stolen and stolen[0].get_text("text") == "for bob only"
        assert not w.bob.events.events_named("message_received")

    def test_file_forgery_accepted_by_plain_search(self, joined_plain_world):
        w = joined_plain_world
        forged = forge_file_advertisement(
            str(w.bob.peer_id), "students", "trusted-notes.pdf", b"malware")
        from repro.jxta.messages import Message

        push = Message("adv_push")
        push.add_xml("adv", forged)
        w.net.send("peer:mallory", "peer:alice", push.to_wire())
        names = [e.parsed.file_name for e in
                 w.alice.control.cache.find("FileAdvertisement")]
        assert "trusted-notes.pdf" in names  # alice's cache is poisoned


class TestAgainstSecureOverlay:
    def test_unsigned_forgery_rejected(self, joined_secure_world):
        w = joined_secure_world
        forged = forge_pipe_advertisement(
            str(w.bob.peer_id), "students", "peer:mallory",
            w.root.fork(b"forge"))
        with pytest.raises((TamperedAdvertisementError, SecurityError)):
            w.alice.validator.validate(forged, now=w.net.clock.now)

    def test_signed_forgery_fails_cbid(self, joined_secure_world):
        """carol signs (with her own valid credential) an advertisement
        claiming bob's peer id: the CBID check kills it."""
        w = joined_secure_world
        forged = forge_signed_advertisement(
            str(w.bob.peer_id), "students", "peer:carol",
            w.carol.keystore, w.root.fork(b"fs"))
        with pytest.raises(CBIDMismatchError):
            w.alice.validator.validate(forged, now=w.net.clock.now)

    def test_poisoned_cache_does_not_hijack_secure_send(self, joined_secure_world):
        """Even if the forged advertisement lands in alice's cache, the
        secure send validates it and aborts instead of delivering."""
        w = joined_secure_world
        forged = forge_signed_advertisement(
            str(w.bob.peer_id), "students", "peer:carol",
            w.carol.keystore, w.root.fork(b"fs2"))
        w.alice.control.cache.publish(forged)
        with pytest.raises(SecurityError):
            w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "private")

    def test_tampered_legitimate_adv_rejected(self, joined_secure_world):
        """Taking bob's REAL signed advertisement and editing the address."""
        w = joined_secure_world
        entry = w.broker.control.cache.find_one(
            "PipeAdvertisement", str(w.bob.peer_id), group="students")
        tampered = tamper_signed_advertisement(entry.element, "peer:mallory")
        with pytest.raises(TamperedAdvertisementError):
            w.alice.validator.validate(tampered, now=w.net.clock.now)

    def test_legitimate_adv_still_validates(self, joined_secure_world):
        """Sanity: validation rejects forgeries but accepts the real thing."""
        w = joined_secure_world
        entry = w.broker.control.cache.find_one(
            "PipeAdvertisement", str(w.bob.peer_id), group="students")
        result = w.alice.validator.validate(entry.element, now=w.net.clock.now)
        adv = result.advertisement
        assert isinstance(adv, PipeAdvertisement)
        assert adv.address == "peer:bob"
