"""Login replay (§4.2.2's motivating attack)."""

from repro.attacks import LoginReplayer
from repro.jxta.endpoint import Endpoint


def _attacker_endpoint(net, address="peer:mallory"):
    # the attacker only needs a network presence to replay from
    net.register(address, lambda frame: None)
    return address


class TestAgainstPlainLogin:
    def test_replay_succeeds_on_plain_protocol(self, plain_world):
        """The plain login has no freshness: a captured login blob gets a
        second login_ok, letting the attacker impersonate the victim."""
        w = plain_world
        attacker = LoginReplayer("peer:mallory").attach(w.net)
        _attacker_endpoint(w.net)
        w.alice.connect("broker:0")
        w.alice.login("alice", "pw-a")
        assert len(attacker.captured) == 1
        responses = attacker.replay_all(w.net)
        assert LoginReplayer.successes(responses)  # impersonation achieved


class TestAgainstSecureLogin:
    def test_replay_blocked_by_sid(self, secure_world):
        """The secure login blob is one-shot: the sid inside was consumed."""
        w = secure_world
        attacker = LoginReplayer("peer:mallory").attach(w.net)
        _attacker_endpoint(w.net)
        w.alice.secure_connect("broker:0")
        w.alice.secure_login("alice", "pw-a")
        assert len(attacker.captured) == 1
        responses = attacker.replay_all(w.net)
        assert not LoginReplayer.successes(responses)
        assert all(r.msg_type == "secure_login_fail" for r in responses)
        assert w.broker.sids.replays_blocked >= 1

    def test_attacker_cannot_read_what_it_captured(self, secure_world):
        w = secure_world
        attacker = LoginReplayer("peer:mallory").attach(w.net)
        _attacker_endpoint(w.net)
        w.alice.secure_connect("broker:0")
        w.alice.secure_login("alice", "pw-a")
        blob = attacker.captured[0].payload
        assert b"pw-a" not in blob

    def test_victim_session_unaffected_by_replay(self, secure_world):
        w = secure_world
        attacker = LoginReplayer("peer:mallory").attach(w.net)
        _attacker_endpoint(w.net)
        w.alice.secure_connect("broker:0")
        w.alice.secure_login("alice", "pw-a")
        attacker.replay_all(w.net)
        assert str(w.alice.peer_id) in w.broker.connected
        assert w.broker.connected[str(w.alice.peer_id)].username == "alice"
