"""Active man-in-the-middle: tampering and dropping."""

from repro.attacks import (
    DroppingInterceptor,
    TamperCampaign,
    bit_flipper,
    byte_substitution,
)


class TestAgainstPlainMessaging:
    def test_substitution_changes_received_text(self, joined_plain_world):
        """Plain chat: the MITM rewrites 'noon' to 'dawn' and the victim
        has no way to notice."""
        w = joined_plain_world
        got = []
        w.bob.events.subscribe("message_received", lambda **kw: got.append(kw))
        with TamperCampaign(w.net) as campaign:
            campaign.install(byte_substitution(b"noon", b"dawn"))
            w.alice.send_msg_peer(str(w.bob.peer_id), "students", "meet at noon")
        assert got[0]["text"] == "meet at dawn"  # silently altered


def _envelope_tamperer():
    """Rewrite the envelope body inside a secure_chat frame: the XML stays
    well-formed, only the AEAD ciphertext changes — isolating the
    crypto-level rejection path from mere frame corruption."""
    from dataclasses import replace as dc_replace

    from repro.jxta.messages import Message

    def interceptor(frame):
        try:
            outer = Message.from_wire(frame.payload)
        except Exception:
            return frame
        if outer.msg_type != "pipe_data":
            return frame
        inner = Message.from_element(outer.get_xml("inner"))
        if inner.msg_type != "secure_chat":
            return frame
        env = inner.get_json("envelope")
        body = env["body"]
        env["body"] = ("A" if body[0] != "A" else "B") + body[1:]
        tampered_inner = Message("secure_chat")
        tampered_inner.add_json("envelope", env)
        tampered = Message("pipe_data")
        tampered.add_text("pipe_id", outer.get_text("pipe_id"))
        tampered.add_xml("inner", tampered_inner.to_element())
        return dc_replace(frame, payload=tampered.to_wire())

    return interceptor


class TestAgainstSecureMessaging:
    def test_ciphertext_tamper_rejected_not_delivered(self, joined_secure_world):
        w = joined_secure_world
        got, rejected = [], []
        w.bob.events.subscribe("secure_message_received",
                               lambda **kw: got.append(kw))
        w.bob.events.subscribe("message_rejected",
                               lambda **kw: rejected.append(kw))
        with TamperCampaign(w.net) as campaign:
            campaign.install(_envelope_tamperer())
            w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "x")
        assert got == []
        assert rejected  # tampering detected, message refused

    def test_frame_bit_flip_never_delivers(self, joined_secure_world):
        """Crude whole-frame corruption: depending on where the flip
        lands the message is rejected by the secure layer or dropped as
        undecodable — either way it is never delivered as valid."""
        w = joined_secure_world
        got = []
        w.bob.events.subscribe("secure_message_received",
                               lambda **kw: got.append(kw))
        with TamperCampaign(w.net) as campaign:
            campaign.install(bit_flipper(dst_filter="peer:bob"))
            w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "x")
        assert got == []

    def test_clean_delivery_after_campaign(self, joined_secure_world):
        w = joined_secure_world
        got = []
        w.bob.events.subscribe("secure_message_received",
                               lambda **kw: got.append(kw))
        with TamperCampaign(w.net) as campaign:
            campaign.install(bit_flipper(dst_filter="peer:bob"))
            w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "garbled")
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "clean")
        assert [m["text"] for m in got] == ["clean"]


class TestDropping:
    def test_dropped_datagrams_counted(self, joined_secure_world):
        w = joined_secure_world
        dropper = DroppingInterceptor("peer:bob")
        w.net.add_interceptor(dropper)
        delivered = w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "x")
        w.net.remove_interceptor(dropper)
        assert not delivered  # best-effort send reports the drop
        assert len(dropper.dropped) == 1
        assert not w.bob.events.events_named("secure_message_received")

    def test_availability_not_protected(self, joined_secure_world):
        """Honesty check: the paper's scheme gives no availability
        guarantees — a dropping MITM is out of scope, only detected via
        the False return."""
        w = joined_secure_world
        dropper = DroppingInterceptor("peer:bob")
        w.net.add_interceptor(dropper)
        assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "a") is False
        w.net.remove_interceptor(dropper)
