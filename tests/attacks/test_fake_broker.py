"""§2.3 threat 3: fake broker / DNS spoofing."""

import pytest

from repro.attacks import FakeBroker, spoof_dns
from repro.errors import BrokerAuthenticationError


class TestAgainstPlainClient:
    def test_plain_client_fully_fooled(self, plain_world):
        """The attack the paper warns about: plain connect+login hand the
        password straight to the impostor."""
        w = plain_world
        fake = FakeBroker(w.net, "broker:fake", w.root.fork(b"fk"))
        w.net.add_interceptor(spoof_dns("broker:0", "broker:fake"))
        # victim believes it's talking to the well-known broker address
        name = w.alice.connect("broker:0")
        assert name == fake.name  # no way to notice
        w.alice.login("alice", "pw-a")
        assert ("alice", "pw-a") in fake.harvested


class TestAgainstSecureClient:
    def test_forged_credential_rejected(self, secure_world):
        w = secure_world
        fake = FakeBroker(w.net, "broker:fake", w.root.fork(b"fk"))
        w.net.add_interceptor(spoof_dns("broker:0", "broker:fake"))
        with pytest.raises(BrokerAuthenticationError, match="legitimate"):
            w.alice.secure_connect("broker:0")
        assert w.alice.events.events_named("broker_rejected")
        assert w.alice.sid is None

    def test_stolen_credential_rejected(self, secure_world):
        """Even holding the REAL broker's credential (public data!) the
        fake fails step 7: it cannot sign the challenge without SK_Br."""
        w = secure_world
        fake = FakeBroker(w.net, "broker:fake", w.root.fork(b"fk"),
                          stolen_credential=w.broker.credential)
        w.net.add_interceptor(spoof_dns("broker:0", "broker:fake"))
        with pytest.raises(BrokerAuthenticationError, match="impersonator"):
            w.alice.secure_connect("broker:0")

    def test_no_password_ever_reaches_fake(self, secure_world):
        w = secure_world
        fake = FakeBroker(w.net, "broker:fake", w.root.fork(b"fk"))
        interceptor = spoof_dns("broker:0", "broker:fake")
        w.net.add_interceptor(interceptor)
        with pytest.raises(BrokerAuthenticationError):
            w.alice.secure_connect("broker:0")
        # the client stopped at secureConnection; login never happened
        assert fake.harvested == []
        assert fake.opaque_blobs == []

    def test_recovery_after_attack_ends(self, secure_world):
        w = secure_world
        fake = FakeBroker(w.net, "broker:fake", w.root.fork(b"fk"))
        interceptor = spoof_dns("broker:0", "broker:fake")
        w.net.add_interceptor(interceptor)
        with pytest.raises(BrokerAuthenticationError):
            w.alice.secure_connect("broker:0")
        w.net.remove_interceptor(interceptor)  # spoofing fixed
        cred = w.alice.secure_connect("broker:0")
        assert cred.subject_name == "B0"
        assert w.alice.secure_login("alice", "pw-a") == ["students"]
