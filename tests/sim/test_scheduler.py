"""Discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim import Scheduler, VirtualClock


@pytest.fixture()
def sched():
    return Scheduler(VirtualClock())


class TestSchedule:
    def test_fires_in_time_order(self, sched):
        fired = []
        sched.schedule(2.0, lambda: fired.append("b"))
        sched.schedule(1.0, lambda: fired.append("a"))
        sched.schedule(3.0, lambda: fired.append("c"))
        sched.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self, sched):
        times = []
        sched.schedule(1.5, lambda: times.append(sched.clock.now))
        sched.run_until(5.0)
        assert times == [pytest.approx(1.5)]
        assert sched.clock.now == pytest.approx(5.0)

    def test_same_time_fifo(self, sched):
        fired = []
        for name in "abc":
            sched.schedule(1.0, lambda n=name: fired.append(n))
        sched.run_until(2.0)
        assert fired == ["a", "b", "c"]

    def test_past_event_rejected(self, sched):
        with pytest.raises(SimulationError):
            sched.schedule(-0.1, lambda: None)

    def test_cancel(self, sched):
        fired = []
        handle = sched.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sched.run_until(5.0)
        assert fired == []
        assert handle.cancelled

    def test_events_scheduled_during_run(self, sched):
        fired = []

        def chain():
            fired.append(sched.clock.now)
            if len(fired) < 3:
                sched.schedule(1.0, chain)

        sched.schedule(1.0, chain)
        sched.run_until(10.0)
        assert fired == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_run_until_respects_deadline(self, sched):
        fired = []
        sched.schedule(5.0, lambda: fired.append(1))
        sched.run_until(4.0)
        assert fired == []
        assert sched.pending == 1
        sched.run_until(5.0)
        assert fired == [1]


class TestPeriodic:
    def test_fires_repeatedly(self, sched):
        fired = []
        sched.schedule_periodic(2.0, lambda: fired.append(sched.clock.now))
        sched.run_for(9.0)
        assert fired == [pytest.approx(t) for t in (2.0, 4.0, 6.0, 8.0)]

    def test_cancel_stops_series(self, sched):
        fired = []
        handle = sched.schedule_periodic(1.0, lambda: fired.append(1))
        sched.run_for(3.5)
        handle.cancel()
        sched.run_for(5.0)
        assert len(fired) == 3

    def test_jitter_applied(self, sched):
        fired = []
        sched.schedule_periodic(1.0, lambda: fired.append(sched.clock.now),
                                jitter=lambda: 0.5)
        sched.run_for(4.0)
        assert fired == [pytest.approx(1.5), pytest.approx(3.0)]

    def test_non_positive_interval_rejected(self, sched):
        with pytest.raises(SimulationError):
            sched.schedule_periodic(0.0, lambda: None)


class TestRunUntilIdle:
    def test_drains_queue(self, sched):
        fired = []
        sched.schedule(1.0, lambda: fired.append(1))
        sched.schedule(100.0, lambda: fired.append(2))
        assert sched.run_until_idle() == 2
        assert fired == [1, 2]
        assert sched.pending == 0

    def test_runaway_guard(self, sched):
        def forever():
            sched.schedule(1.0, forever)

        sched.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            sched.run_until_idle(max_events=50)
