"""Fault injection: deterministic, composable, countable.

The contract under test (see ``src/repro/sim/faults.py``):

* a (plan, seed) pair replays the exact same fault schedule,
* each fault draws from its own DRBG stream (composition does not
  perturb schedules),
* windowed outages heal exactly at their boundary,
* ``BrokerCrash`` runs its restart callback once, and
* injections are counted as ``faults.<fault>.injected``.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.sim import (
    BrokerCrash,
    DuplicateDelivery,
    FaultPlan,
    FrameLoss,
    LatencyJitter,
    LinkOutage,
    Partition,
    SimNetwork,
    VirtualClock,
)


@pytest.fixture()
def fresh_obs():
    saved = (obs.get_registry(), obs.get_events())
    registry = obs.set_registry(obs.Registry(enabled=True))
    obs.set_events(obs.ProtocolEvents(registry=registry))
    try:
        yield registry
    finally:
        obs.set_registry(saved[0])
        obs.set_events(saved[1])


def make_net(receivers=("a", "b")) -> tuple[SimNetwork, dict[str, list]]:
    net = SimNetwork(clock=VirtualClock())
    inboxes: dict[str, list] = {}
    for address in receivers:
        box: list = []
        inboxes[address] = box
        net.register(address, box.append)
    return net, inboxes


def delivery_pattern(seed, n=60, rate=0.3) -> list[bool]:
    net, _ = make_net()
    FaultPlan(FrameLoss(rate)).install(net, seed=seed)
    return [net.send("a", "b", b"x") for _ in range(n)]


class TestDeterminism:
    def test_same_seed_replays_identically(self):
        first = delivery_pattern(b"seed-1")
        second = delivery_pattern(b"seed-1")
        assert first == second
        assert not all(first)          # some frames were dropped
        assert any(first)              # and some survived

    def test_different_seed_differs(self):
        assert delivery_pattern(b"seed-1") != delivery_pattern(b"seed-2")

    def test_composition_preserves_per_fault_streams(self):
        """Adding a second fault must not shift the first one's schedule.

        Each fault's stream is labelled by (index, name), so a loss
        fault at index 0 draws the same sequence whether or not a
        jitter fault rides along behind it.
        """
        alone = delivery_pattern(b"seed-c")
        net, _ = make_net()
        FaultPlan(FrameLoss(0.3), LatencyJitter(0.0, 0.01)).install(
            net, seed=b"seed-c")
        composed = [net.send("a", "b", b"x") for _ in range(60)]
        assert composed == alone


class TestFrameLoss:
    def test_rate_one_drops_everything(self, fresh_obs):
        net, inboxes = make_net()
        FaultPlan(FrameLoss(1.0)).install(net)
        assert not any(net.send("a", "b", b"x") for _ in range(10))
        assert inboxes["b"] == []
        assert fresh_obs.count("faults.loss.injected") == 10

    def test_rate_zero_drops_nothing(self):
        net, inboxes = make_net()
        FaultPlan(FrameLoss(0.0)).install(net)
        assert all(net.send("a", "b", b"x") for _ in range(10))
        assert len(inboxes["b"]) == 10

    def test_match_scopes_the_loss(self):
        net, _ = make_net()
        FaultPlan(FrameLoss(1.0, match=lambda f: f.dst == "b")).install(net)
        assert net.send("a", "a", b"x") is True
        assert net.send("a", "b", b"x") is False

    def test_rate_is_validated(self):
        with pytest.raises(ValueError):
            FrameLoss(1.5)


class TestLatencyJitter:
    def test_adds_virtual_transit_time(self):
        net, _ = make_net()
        FaultPlan(LatencyJitter(0.01, 0.02)).install(net)
        before = net.clock.now
        net.send("a", "b", b"x")
        # base link transit plus at least the jitter floor
        assert net.clock.now - before >= 0.01

    def test_bounds_are_validated(self):
        with pytest.raises(ValueError):
            LatencyJitter(0.05, 0.01)


class TestDuplicateDelivery:
    def test_duplicates_reach_the_handler_twice(self, fresh_obs):
        net, inboxes = make_net()
        FaultPlan(DuplicateDelivery(1.0)).install(net)
        net.send("a", "b", b"x")
        assert len(inboxes["b"]) == 2
        assert fresh_obs.count("faults.duplicate.injected") == 1

    def test_duplicate_does_not_reenter_the_fault_chain(self):
        """The copy models the wire delivering twice, not re-sending:
        a 100% loss fault *behind* the duplicator never sees the copy."""
        net, inboxes = make_net()
        FaultPlan(DuplicateDelivery(1.0), FrameLoss(1.0)).install(net)
        assert net.send("a", "b", b"x") is False   # original dropped
        assert len(inboxes["b"]) == 1              # the copy still landed


class TestWindows:
    def test_link_outage_heals_at_boundary(self):
        net, _ = make_net()
        FaultPlan(LinkOutage("a", "b", start=0.0, heal_at=1.0)).install(net)
        assert net.send("a", "b", b"x") is False
        assert net.send("b", "a", b"x") is False   # both directions dark
        net.clock.advance(1.0)
        assert net.send("a", "b", b"x") is True

    def test_link_outage_spares_other_pairs(self):
        net, _ = make_net(receivers=("a", "b", "c"))
        FaultPlan(LinkOutage("a", "b", start=0.0, heal_at=1.0)).install(net)
        assert net.send("a", "c", b"x") is True

    def test_partition_blocks_only_cross_group_frames(self):
        net, _ = make_net(receivers=("a", "b", "c", "d"))
        FaultPlan(Partition(("a", "b"), ("c", "d"),
                            start=0.0, heal_at=5.0)).install(net)
        assert net.send("a", "c", b"x") is False
        assert net.send("d", "b", b"x") is False
        assert net.send("a", "b", b"x") is True    # intra-group unaffected
        net.clock.advance(5.0)
        assert net.send("a", "c", b"x") is True

    def test_heal_before_start_is_rejected(self):
        with pytest.raises(ValueError):
            LinkOutage("a", "b", start=2.0, heal_at=1.0)


class TestBrokerCrash:
    def test_outage_then_restart_callback_once(self):
        net, _ = make_net(receivers=("broker", "peer"))
        restarts: list[float] = []
        crash = BrokerCrash("broker", at=0.0, restart_at=1.0,
                            on_restart=lambda: restarts.append(net.clock.now))
        FaultPlan(crash).install(net)
        assert net.send("peer", "broker", b"x") is False
        assert net.send("broker", "peer", b"x") is False
        assert restarts == []                      # still down
        net.clock.advance(1.0)
        assert net.send("peer", "broker", b"x") is True
        assert net.send("peer", "broker", b"x") is True
        assert len(restarts) == 1                  # callback fired exactly once

    def test_other_traffic_flows_during_outage(self):
        net, _ = make_net(receivers=("broker", "peer", "other"))
        FaultPlan(BrokerCrash("broker", at=0.0, restart_at=1.0)).install(net)
        assert net.send("peer", "other", b"x") is True


class TestInstallUninstall:
    def test_uninstall_restores_clean_delivery(self):
        net, inboxes = make_net()
        injector = FaultPlan(FrameLoss(1.0)).install(net)
        assert net.send("a", "b", b"x") is False
        injector.uninstall()
        assert net.send("a", "b", b"x") is True
        assert len(inboxes["b"]) == 1
