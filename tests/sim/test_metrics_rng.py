"""Metrics registry and deterministic sim randomness."""

import pytest

from repro.sim import Metrics, SimRandom


class TestMetrics:
    def test_counters(self):
        m = Metrics()
        m.incr("x")
        m.incr("x", 4)
        assert m.count("x") == 5
        assert m.count("missing") == 0

    def test_durations(self):
        m = Metrics()
        m.observe("op", 1.0)
        m.observe("op", 3.0)
        assert m.total("op") == pytest.approx(4.0)
        assert m.mean("op") == pytest.approx(2.0)
        assert m.mean("missing") == 0.0

    def test_merge(self):
        a, b = Metrics(), Metrics()
        a.incr("x")
        b.incr("x", 2)
        b.observe("t", 1.0)
        a.merge(b)
        assert a.count("x") == 3
        assert a.total("t") == pytest.approx(1.0)

    def test_snapshot(self):
        m = Metrics()
        m.incr("c", 2)
        m.observe("d", 0.5)
        snap = m.snapshot()
        assert snap["c"] == 2.0
        assert snap["d.total_s"] == pytest.approx(0.5)
        assert snap["d.mean_s"] == pytest.approx(0.5)


class TestSimRandom:
    def test_deterministic(self):
        a = SimRandom(b"seed")
        b = SimRandom(b"seed")
        assert a.stream("jitter").generate(16) == b.stream("jitter").generate(16)

    def test_streams_independent(self):
        r = SimRandom(b"seed")
        assert r.stream("a").generate(16) != r.stream("b").generate(16)

    def test_str_seed_accepted(self):
        assert SimRandom("seed").uniform() == SimRandom(b"seed").uniform()

    def test_stream_cached(self):
        r = SimRandom(b"seed")
        assert r.stream("x") is r.stream("x")
