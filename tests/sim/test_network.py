"""Simulated network: delivery, links, taps, interceptors, stats."""

from dataclasses import replace

import pytest

from repro.errors import NetworkError
from repro.sim import LinkModel, SimNetwork, VirtualClock
from repro.sim.network import Frame


@pytest.fixture()
def net():
    return SimNetwork(clock=VirtualClock())


class TestRegistration:
    def test_duplicate_address_rejected(self, net):
        net.register("a", lambda f: None)
        with pytest.raises(NetworkError):
            net.register("a", lambda f: None)

    def test_unregister(self, net):
        net.register("a", lambda f: None)
        net.unregister("a")
        assert not net.is_registered("a")
        net.register("a", lambda f: None)  # reusable


class TestSend:
    def test_delivers_payload(self, net):
        seen = []
        net.register("dst", lambda f: seen.append(f))
        net.register("src", lambda f: None)
        assert net.send("src", "dst", b"hello")
        assert seen[0].payload == b"hello"
        assert seen[0].src == "src"

    def test_unknown_destination_raises(self, net):
        with pytest.raises(NetworkError):
            net.send("src", "nowhere", b"x")

    def test_clock_advances_by_transit(self, net):
        net.register("dst", lambda f: None)
        t0 = net.clock.now
        net.send("src", "dst", b"x" * 1000)
        expected = net.default_link.transit_time(1000)
        assert net.clock.now - t0 == pytest.approx(expected)


class TestRequest:
    def test_round_trip(self, net):
        net.register("server", lambda f: f.payload.upper())
        net.register("client", lambda f: None)
        assert net.request("client", "server", b"abc") == b"ABC"

    def test_no_answer_raises(self, net):
        net.register("server", lambda f: None)
        with pytest.raises(NetworkError):
            net.request("client", "server", b"abc")

    def test_handler_cpu_charged(self, net):
        def busy(frame):
            sum(range(20000))
            return b"done"

        net.register("server", busy)
        cpu0 = net.clock.cpu_time
        net.request("client", "server", b"go")
        assert net.clock.cpu_time > cpu0

    def test_both_directions_cost_network_time(self, net):
        net.register("server", lambda f: b"r" * 5000)
        net0 = net.clock.network_time
        net.request("client", "server", b"q")
        one_way_small = net.default_link.transit_time(1)
        assert net.clock.network_time - net0 > 2 * one_way_small * 0.9


class TestLinks:
    def test_per_pair_override(self, net):
        slow = LinkModel(latency_s=1.0, bandwidth_bps=0)
        net.set_link("a", "b", slow)
        assert net.link_for("a", "b") is slow
        assert net.link_for("b", "a") is slow  # symmetric by default
        assert net.link_for("a", "c") is net.default_link

    def test_asymmetric_override(self, net):
        slow = LinkModel(latency_s=1.0)
        net.set_link("a", "b", slow, symmetric=False)
        assert net.link_for("b", "a") is net.default_link


class TestTaps:
    def test_tap_sees_all_frames(self, net):
        frames = []

        class Tap:
            def observe(self, frame):
                frames.append(frame)

        net.add_tap(Tap())
        net.register("dst", lambda f: None)
        net.send("src", "dst", b"payload-1")
        net.send("src", "dst", b"payload-2")
        assert [f.payload for f in frames] == [b"payload-1", b"payload-2"]

    def test_tap_removal(self, net):
        frames = []

        class Tap:
            def observe(self, frame):
                frames.append(frame)

        tap = Tap()
        net.add_tap(tap)
        net.register("dst", lambda f: None)
        net.send("src", "dst", b"1")
        net.remove_tap(tap)
        net.send("src", "dst", b"2")
        assert len(frames) == 1


class TestInterceptors:
    def test_drop(self, net):
        seen = []
        net.register("dst", lambda f: seen.append(f))
        net.add_interceptor(lambda f: None)
        assert not net.send("src", "dst", b"x")
        assert seen == []

    def test_rewrite_payload(self, net):
        seen = []
        net.register("dst", lambda f: seen.append(f))
        net.add_interceptor(lambda f: replace(f, payload=b"evil"))
        net.send("src", "dst", b"good")
        assert seen[0].payload == b"evil"

    def test_redirect(self, net):
        good, evil = [], []
        net.register("dst", lambda f: good.append(f))
        net.register("attacker", lambda f: evil.append(f))
        net.add_interceptor(
            lambda f: replace(f, dst="attacker") if f.dst == "dst" else f)
        net.send("src", "dst", b"secret")
        assert good == [] and len(evil) == 1

    def test_dropped_request_raises(self, net):
        net.register("server", lambda f: b"resp")
        net.add_interceptor(lambda f: None)
        with pytest.raises(NetworkError):
            net.request("client", "server", b"q")


class TestStats:
    def test_counters(self, net):
        net.register("dst", lambda f: None)
        net.send("src", "dst", b"12345")
        assert net.stats.frames_sent == 1
        assert net.stats.frames_delivered == 1
        assert net.stats.bytes_sent == 5
        assert net.stats.per_dst_bytes["dst"] == 5

    def test_drop_counted(self, net):
        net.register("dst", lambda f: None)
        net.add_interceptor(lambda f: None)
        net.send("src", "dst", b"x")
        assert net.stats.frames_dropped == 1


class TestFrame:
    def test_size(self):
        f = Frame(src="a", dst="b", payload=b"12345", sent_at=0.0)
        assert f.size == 5
