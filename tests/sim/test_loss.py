"""Lossy links: failure injection through the link model."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import NetworkError
from repro.sim import LinkModel, SimNetwork, VirtualClock


def _lossy_net(loss: float, seed: bytes = b"loss") -> SimNetwork:
    rng = HmacDrbg(seed)
    return SimNetwork(clock=VirtualClock(),
                      link=LinkModel(latency_s=0.001, bandwidth_bps=0,
                                     loss=loss),
                      loss_draw=rng.uniform)


class TestDatagramLoss:
    def test_total_loss_drops_everything(self):
        net = _lossy_net(1.0)
        seen = []
        net.register("dst", lambda f: seen.append(f))
        for _ in range(10):
            assert not net.send("src", "dst", b"x")
        assert seen == []
        assert net.stats.frames_dropped == 10

    def test_no_loss_delivers_everything(self):
        net = _lossy_net(0.0)
        seen = []
        net.register("dst", lambda f: seen.append(f))
        for _ in range(10):
            assert net.send("src", "dst", b"x")
        assert len(seen) == 10

    def test_partial_loss_statistics(self):
        net = _lossy_net(0.5, seed=b"half")
        net.register("dst", lambda f: None)
        delivered = sum(net.send("src", "dst", b"x") for _ in range(200))
        assert 60 < delivered < 140  # ~100 expected

    def test_lost_frame_costs_no_network_time(self):
        net = _lossy_net(1.0)
        net.register("dst", lambda f: None)
        net.send("src", "dst", b"x")
        assert net.clock.network_time == 0.0

    def test_deterministic_given_seed(self):
        outcomes_a = []
        net = _lossy_net(0.5, seed=b"det")
        net.register("dst", lambda f: None)
        for _ in range(50):
            outcomes_a.append(net.send("src", "dst", b"x"))
        outcomes_b = []
        net = _lossy_net(0.5, seed=b"det")
        net.register("dst", lambda f: None)
        for _ in range(50):
            outcomes_b.append(net.send("src", "dst", b"x"))
        assert outcomes_a == outcomes_b


class TestRequestLoss:
    def test_lost_request_raises(self):
        net = _lossy_net(1.0)
        net.register("server", lambda f: b"resp")
        with pytest.raises(NetworkError, match="lost in transit"):
            net.request("client", "server", b"q")


class TestSecureMessagingUnderLoss:
    def test_group_send_reports_partial_delivery(self):
        """secureMsgPeerGroup on a lossy LAN: best-effort semantics mean
        the call reports how many sends got through."""
        from repro.bench import fixtures
        from repro.core.policy import SecurityPolicy
        from repro.crypto import envelope

        policy = SecurityPolicy(rsa_bits=512,
                                envelope_wrap=envelope.WRAP_V15).validate()
        net, admin, broker, clients = fixtures.build_secure_world(
            n_clients=4, policy=policy, seed=b"lossy", joined=True)
        rng = HmacDrbg(b"loss-late")
        net.default_link = LinkModel(latency_s=0.001, bandwidth_bps=0, loss=0.5)
        net._loss_draw = rng.uniform
        sender = clients[0]
        from repro.errors import NotConnectedError

        try:
            delivered = sender.secure_msg_peer_group("bench", "lossy hello")
        except (NetworkError, NotConnectedError):
            delivered = -1  # broker RPC itself got unlucky; acceptable
        assert -1 <= delivered <= 3
