"""Link models."""

import pytest

from repro.sim.latency import LAN_2009, LOOPBACK, PROFILES, WAN_ADSL, LinkModel


class TestTransitTime:
    def test_latency_only(self):
        link = LinkModel(latency_s=0.01, bandwidth_bps=0)
        assert link.transit_time(10**9) == pytest.approx(0.01)

    def test_bandwidth_term(self):
        link = LinkModel(latency_s=0.0, bandwidth_bps=8e6)  # 1 MB/s
        assert link.transit_time(1_000_000) == pytest.approx(1.0)

    def test_size_monotone(self):
        assert LAN_2009.transit_time(10_000) > LAN_2009.transit_time(100)

    def test_per_message_overhead(self):
        link = LinkModel(latency_s=0.0, bandwidth_bps=0, per_message_s=0.002)
        assert link.transit_time(0) == pytest.approx(0.002)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LAN_2009.transit_time(-1)

    def test_jitter_applied_only_with_draw(self):
        link = LinkModel(latency_s=0.0, bandwidth_bps=0, jitter_s=1.0)
        assert link.transit_time(0) == pytest.approx(0.0)
        assert link.transit_time(0, jitter_draw=lambda: 0.5) == pytest.approx(0.5)


class TestLoss:
    def test_no_loss_by_default(self):
        assert not LAN_2009.is_lost(lambda: 0.0)

    def test_loss_threshold(self):
        link = LinkModel(loss=0.5)
        assert link.is_lost(lambda: 0.4)
        assert not link.is_lost(lambda: 0.6)


class TestProfiles:
    def test_registry_complete(self):
        assert set(PROFILES) == {"lan2009", "loopback", "wan-adsl", "campus"}

    def test_ordering_sanity(self):
        # loopback fastest, WAN slowest for a 10 kB message
        n = 10_000
        assert LOOPBACK.transit_time(n) < LAN_2009.transit_time(n) < WAN_ADSL.transit_time(n)
