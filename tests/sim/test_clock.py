"""Virtual clock semantics."""

import pytest

from repro.sim import VirtualClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_network_ledger(self):
        clock = VirtualClock()
        clock.advance_network(0.25)
        assert clock.network_time == pytest.approx(0.25)
        assert clock.now == pytest.approx(0.25)


class TestCpuAccounting:
    def test_charge_scaled(self):
        clock = VirtualClock(cpu_scale=3.0)
        clock.charge_cpu(1.0)
        assert clock.now == pytest.approx(3.0)
        assert clock.cpu_time == pytest.approx(3.0)

    def test_cpu_section_measures_real_time(self):
        clock = VirtualClock()
        with clock.cpu_section():
            sum(range(10000))
        assert clock.cpu_time > 0

    def test_zero_scale_freezes_cpu_time(self):
        clock = VirtualClock(cpu_scale=0.0)
        with clock.cpu_section():
            sum(range(1000))
        assert clock.now == 0.0

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(cpu_scale=-1.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance_network(1.0)
        clock.charge_cpu(1.0)
        clock.reset()
        assert clock.now == 0.0 and clock.cpu_time == 0.0 and clock.network_time == 0.0
