"""Span nesting, error capture, export, and the disabled fast path."""

import json

import pytest

from repro import obs
from repro.obs.trace import _NULL_SPAN, Tracer


def test_nested_spans_build_one_tree(fresh_obs):
    tracer = obs.get_tracer()
    with obs.span("secureLogin", peer="peer:alice"):
        with obs.span("secure_login.sign"):
            pass
        with obs.span("secure_login.envelope"):
            pass
    assert len(tracer.finished) == 1
    root = tracer.finished[0]
    assert root.name == "secureLogin"
    assert root.attrs == {"peer": "peer:alice"}
    assert [c.name for c in root.children] == [
        "secure_login.sign", "secure_login.envelope"]
    assert root.duration_ms >= 0.0
    assert all(c.end_ms is not None for c in root.children)


def test_span_records_duration_histograms(fresh_obs):
    with obs.span("secureConnection"):
        with obs.span("secure_connect.sign"):
            pass
    assert fresh_obs.histogram("span.secureConnection.ms").count == 1
    assert fresh_obs.histogram("span.secure_connect.sign.ms").count == 1


def test_error_is_captured_and_span_still_finishes(fresh_obs):
    tracer = obs.get_tracer()
    with pytest.raises(RuntimeError):
        with obs.span("secureLogin"):
            raise RuntimeError("boom")
    assert len(tracer.finished) == 1
    root = tracer.finished[0]
    assert root.error == "RuntimeError: boom"
    assert root.to_dict()["error"] == "RuntimeError: boom"
    assert tracer.current is None  # stack fully unwound


def test_inner_exception_unwinds_outer_stack(fresh_obs):
    tracer = obs.get_tracer()
    with pytest.raises(ValueError):
        with obs.span("outer"):
            with obs.span("inner"):
                raise ValueError("bad")
    # both spans closed, error attributed to each context it crossed
    assert tracer.current is None
    assert len(tracer.finished) == 1
    assert tracer.finished[0].children[0].error == "ValueError: bad"


def test_disabled_tracing_is_a_shared_noop(fresh_obs):
    fresh_obs.disable()
    tracer = obs.get_tracer()
    ctx = obs.span("secureLogin")
    assert ctx is _NULL_SPAN
    with ctx:
        pass
    assert tracer.finished == []
    assert fresh_obs.metric_names() == []


def test_max_traces_evicts_oldest(fresh_obs):
    tracer = obs.set_tracer(Tracer(registry=fresh_obs, max_traces=3))
    for i in range(5):
        with tracer.span(f"op{i}"):
            pass
    assert [s.name for s in tracer.finished] == ["op2", "op3", "op4"]


def test_current_tracks_innermost_open_span(fresh_obs):
    tracer = obs.get_tracer()
    assert tracer.current is None
    with tracer.span("a"):
        assert tracer.current.name == "a"
        with tracer.span("b"):
            assert tracer.current.name == "b"
        assert tracer.current.name == "a"
    assert tracer.current is None


def test_export_roundtrip(fresh_obs, tmp_path):
    tracer = obs.get_tracer()
    with obs.span("secureMsgPeer", to_peer="peer:bob"):
        with obs.span("secure_msg.seal"):
            pass
    out = tmp_path / "traces.json"
    tracer.export(str(out))
    data = json.loads(out.read_text(encoding="utf-8"))
    assert data == tracer.to_dicts()
    assert data[0]["name"] == "secureMsgPeer"
    assert data[0]["attrs"] == {"to_peer": "peer:bob"}
    assert data[0]["children"][0]["name"] == "secure_msg.seal"


def test_clear_drops_everything(fresh_obs):
    tracer = obs.get_tracer()
    with tracer.span("x"):
        pass
    tracer.clear()
    assert tracer.finished == [] and tracer.current is None
