"""The typed hook bus: catalogue enforcement, delivery, containment."""

import pytest

from repro import obs
from repro.obs.events import HOOKS, ProtocolEvents


def test_unknown_hook_rejected_everywhere(fresh_obs):
    bus = obs.get_events()
    with pytest.raises(ValueError):
        bus.on("on_teleport", lambda **kw: None)
    with pytest.raises(ValueError):
        bus.emit("on_teleport")
    with pytest.raises(ValueError):
        bus.listeners("on_teleport")
    with pytest.raises(ValueError):
        bus.off("on_teleport", lambda **kw: None)


def test_emit_delivers_payload_to_subscribers(fresh_obs):
    seen = []
    obs.on("on_replay_blocked", lambda **kw: seen.append(kw))
    obs.emit("on_replay_blocked", peer="peer:alice", kind="nonce")
    assert seen == [{"peer": "peer:alice", "kind": "nonce"}]


def test_emit_counts_even_without_listeners(fresh_obs):
    obs.emit("on_frame_dropped", src="a", dst="b", n_bytes=10)
    obs.emit("on_frame_dropped", src="a", dst="b", n_bytes=10)
    assert fresh_obs.count("events.on_frame_dropped") == 2


def test_off_and_aliases(fresh_obs):
    bus = obs.get_events()
    seen = []
    listener = bus.subscribe("on_login", lambda **kw: seen.append(kw))
    assert bus.listeners("on_login") == [listener]
    bus.unsubscribe("on_login", listener)
    assert bus.listeners("on_login") == []
    bus.emit("on_login", peer="p", username="u", groups=[], secure=True)
    assert seen == []


def test_on_returns_listener_for_decorator_use(fresh_obs):
    @lambda fn: obs.on("on_logout", fn)
    def handler(**kw):
        pass

    assert handler in obs.get_events().listeners("on_logout")


def test_listener_crash_is_contained_and_counted(fresh_obs):
    order = []

    def bad(**kw):
        order.append("bad")
        raise RuntimeError("subscriber bug")

    def good(**kw):
        order.append("good")

    obs.on("on_msg_rejected", bad)
    obs.on("on_msg_rejected", good)
    obs.emit("on_msg_rejected", peer="p", reason="bad signature")  # no raise
    assert order == ["bad", "good"]
    assert fresh_obs.count("events.listener_errors") == 1
    assert fresh_obs.count("events.on_msg_rejected") == 1


def test_clear_unsubscribes_all(fresh_obs):
    bus = obs.get_events()
    bus.on("on_connect", lambda **kw: None)
    bus.clear()
    assert bus.listeners("on_connect") == []


def test_disabled_registry_suppresses_counting_not_delivery(fresh_obs):
    fresh_obs.disable()
    seen = []
    obs.on("on_connect", lambda **kw: seen.append(kw))
    obs.emit("on_connect", peer="p", broker="b", secure=False)
    assert len(seen) == 1  # hooks still fire for attack harnesses
    assert fresh_obs.metric_names() == []


def test_catalogue_documents_payload_for_every_hook():
    assert HOOKS  # non-empty
    for hook, payload in HOOKS.items():
        assert hook.startswith("on_")
        assert payload.strip()


def test_own_registry_overrides_default(fresh_obs):
    private = obs.Registry(enabled=True)
    bus = ProtocolEvents(registry=private)
    bus.emit("on_logout", peer="p", username="u")
    assert private.count("events.on_logout") == 1
    assert fresh_obs.count("events.on_logout") == 0
