"""End-to-end: the instrumented protocol stack records what the docs say.

These tests drive real secure joins and messages through the simulated
overlay and assert the observability layer's three surfaces line up:

* the metrics registry records the documented names,
* the tracer exports the paper's join-overhead breakdown as span trees,
* the hook bus reports the replay defences firing,
* and ``docs/OBSERVABILITY.md`` / ``PROTOCOLS.md`` document every
  exported pattern and hook (both directions are enforced).
"""

from pathlib import Path

from repro import obs
from repro.attacks import LoginReplayer
from repro.obs.events import HOOKS

REPO_ROOT = Path(__file__).resolve().parents[2]


class _Capture:
    """Minimal passive tap: keep every frame for later replay."""

    def __init__(self):
        self.frames = []

    def observe(self, frame):
        self.frames.append(frame)


class TestSecureJoinMetrics:
    def test_join_records_documented_counters(self, fresh_obs, secure_world):
        secure_world.join_all()
        assert fresh_obs.count("overlay.secure_connect.calls") == 3
        assert fresh_obs.count("overlay.secure_login.calls") == 3
        assert fresh_obs.count("events.on_connect") == 3
        assert fresh_obs.count("events.on_login") == 3
        assert fresh_obs.count("events.on_credential_issued") == 3
        assert fresh_obs.count("net.frames_sent") > 0
        assert fresh_obs.count("crypto.rsa.public_op") > 0
        assert fresh_obs.count("crypto.rsa.private_op") > 0
        assert fresh_obs.count("crypto.envelope.seal") >= 3
        assert fresh_obs.count("crypto.envelope.open") >= 3

    def test_join_records_latency_and_byte_histograms(self, fresh_obs,
                                                      secure_world):
        secure_world.join_all()
        for primitive in ("secure_connect", "secure_login"):
            lat = fresh_obs.histogram(f"overlay.{primitive}.latency_ms")
            assert lat.count == 3
            assert lat.p95 >= lat.p50 >= 0.0
            sent = fresh_obs.histogram(f"overlay.{primitive}.bytes_sent")
            assert sent.count == 3
            assert sent.min_value > 0  # every join exchange moved bytes
        assert fresh_obs.histogram("span.secureConnection.ms").count == 3
        assert fresh_obs.histogram("span.secureLogin.ms").count == 3

    def test_secure_msg_records_primitive_and_hooks(self, fresh_obs,
                                                    joined_secure_world):
        w = joined_secure_world
        assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "hi")
        assert fresh_obs.count("overlay.secure_msg_peer.calls") == 1
        assert fresh_obs.count("events.on_msg_sent") == 1
        assert fresh_obs.count("events.on_msg_received") == 1
        assert fresh_obs.histogram("span.secureMsgPeer.ms").count == 1
        assert fresh_obs.histogram("crypto.envelope.plaintext_bytes").count >= 1

    def test_every_recorded_name_matches_a_documented_pattern(
            self, fresh_obs, joined_secure_world):
        w = joined_secure_world
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "hello")
        w.carol.logout()
        names = fresh_obs.metric_names()
        assert names  # the run above must have recorded something
        undocumented = [n for n in names if obs.metric_pattern_for(n) is None]
        assert undocumented == []


class TestJoinBreakdownTrace:
    def test_span_trees_reproduce_the_paper_breakdown(self, fresh_obs,
                                                      secure_world):
        secure_world.join_all()
        tracer = obs.get_tracer()
        by_name = {}
        for root in tracer.finished:
            by_name.setdefault(root.name, []).append(root)
        assert len(by_name["secureConnection"]) == 3
        assert len(by_name["secureLogin"]) == 3
        connect_children = {c.name
                            for c in by_name["secureConnection"][0].children}
        assert {"secure_connect.challenge",
                "secure_connect.verify"} <= connect_children
        login_children = {c.name for c in by_name["secureLogin"][0].children}
        assert {"secure_login.sign", "secure_login.envelope",
                "secure_login.verify"} <= login_children

    def test_trace_export_is_json_serialisable(self, fresh_obs, secure_world,
                                               tmp_path):
        secure_world.join_all()
        out = tmp_path / "join_traces.json"
        obs.get_tracer().export(str(out))
        assert out.stat().st_size > 0


class TestReplayDefenceHooks:
    def test_nonce_replay_fires_on_replay_blocked(self, fresh_obs,
                                                  joined_secure_world):
        w = joined_secure_world
        cap = _Capture()
        w.net.add_tap(cap)
        assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students",
                                       "original")
        w.net.remove_tap(cap)
        blocked = []
        obs.on("on_replay_blocked", lambda **kw: blocked.append(kw))
        for frame in cap.frames:  # re-send everything the eavesdropper saw
            try:
                w.net.send(frame.src, frame.dst, frame.payload)
            except Exception:
                pass
        assert any(e["kind"] == "nonce" for e in blocked)
        assert fresh_obs.count("events.on_replay_blocked") >= 1

    def test_sid_replay_fires_on_replay_blocked(self, fresh_obs,
                                                secure_world):
        w = secure_world
        attacker = LoginReplayer("peer:mallory").attach(w.net)
        w.net.register("peer:mallory", lambda frame: None)
        w.alice.secure_connect("broker:0")
        w.alice.secure_login("alice", "pw-a")
        blocked = []
        obs.on("on_replay_blocked", lambda **kw: blocked.append(kw))
        attacker.replay_all(w.net)
        assert any(e["kind"] == "sid" for e in blocked)


class TestDocumentationContract:
    def _read(self, relpath):
        return (REPO_ROOT / relpath).read_text(encoding="utf-8")

    def test_every_metric_pattern_is_in_observability_doc(self):
        doc = self._read("docs/OBSERVABILITY.md")
        missing = [p for p in obs.METRIC_PATTERNS if p not in doc]
        assert missing == []

    def test_every_hook_is_in_observability_doc(self):
        doc = self._read("docs/OBSERVABILITY.md")
        missing = [h for h in HOOKS if h not in doc]
        assert missing == []

    def test_every_hook_is_in_protocols_taxonomy(self):
        doc = self._read("PROTOCOLS.md")
        missing = [h for h in HOOKS if h not in doc]
        assert missing == []
