"""Counter/gauge/histogram math and the registry switch."""

import json

import pytest

from repro.obs.metrics import (
    DISABLE_ENV,
    Counter,
    Gauge,
    Histogram,
    Registry,
    _enabled_by_default,
)


class TestCounter:
    def test_incr_default_and_by(self):
        c = Counter("x")
        c.incr()
        c.incr(41)
        assert c.value == 42

    def test_disabled_owner_freezes(self):
        reg = Registry(enabled=False)
        c = reg.counter("x")
        c.incr()
        assert c.value == 0
        reg.enable()
        c.incr()
        assert c.value == 1


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("g")
        g.set(3)
        g.add(-1.5)
        assert g.value == pytest.approx(1.5)


class TestHistogram:
    def test_empty_histogram_reports_zeros(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.stdev == 0.0
        assert h.percentile(50.0) == 0.0
        assert h.p99 == 0.0
        assert h.summary()["max"] == 0.0

    def test_percentile_out_of_range_raises(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(-0.1)
        with pytest.raises(ValueError):
            h.percentile(100.1)

    def test_single_value_every_percentile(self):
        h = Histogram("h")
        h.observe(7.0)
        assert h.percentile(0.0) == 7.0
        assert h.p50 == 7.0
        assert h.percentile(100.0) == 7.0

    def test_linear_interpolation(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.p50 == pytest.approx(2.5)
        assert h.percentile(25.0) == pytest.approx(1.75)
        assert h.percentile(100.0) == 4.0
        assert h.percentile(0.0) == 1.0

    def test_exact_moments(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.mean == pytest.approx(2.0)
        assert h.stdev == pytest.approx(1.0)  # sample stdev, n-1
        assert h.min_value == 1.0 and h.max_value == 3.0
        assert h.total == pytest.approx(6.0)

    def test_ring_buffer_window(self):
        h = Histogram("h", max_samples=4)
        for v in range(1, 9):  # 1..8; window retains 5,6,7,8
            h.observe(float(v))
        assert h.count == 8
        assert sorted(h.samples) == [5.0, 6.0, 7.0, 8.0]
        # aggregates stay exact over all 8 observations
        assert h.min_value == 1.0 and h.max_value == 8.0
        assert h.total == pytest.approx(36.0)
        # percentiles reflect the recent window
        assert h.percentile(0.0) == 5.0

    def test_max_samples_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram("h", max_samples=0)

    def test_summary_keys(self):
        h = Histogram("h")
        h.observe(1.0)
        assert set(h.summary()) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99"}


class TestRegistry:
    def test_instruments_are_cached_by_name(self):
        reg = Registry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("b") is reg.histogram("b")
        assert reg.gauge("c") is reg.gauge("c")

    def test_conveniences_record(self):
        reg = Registry()
        reg.incr("hits", 2)
        reg.observe("lat", 5.0)
        reg.set_gauge("depth", 3)
        assert reg.count("hits") == 2
        assert reg.histogram("lat").count == 1
        assert reg.gauge("depth").value == 3.0

    def test_count_of_unknown_counter_is_zero(self):
        assert Registry().count("nope") == 0

    def test_timer_records_milliseconds(self):
        reg = Registry()
        with reg.time("op.latency_ms"):
            pass
        h = reg.histogram("op.latency_ms")
        assert h.count == 1
        assert h.min_value >= 0.0

    def test_disabled_registry_records_nothing(self):
        reg = Registry(enabled=False)
        reg.incr("hits")
        reg.observe("lat", 1.0)
        reg.set_gauge("depth", 9)
        with reg.time("op"):
            pass
        assert reg.metric_names() == []

    def test_disabled_timer_is_shared_noop(self):
        reg = Registry(enabled=False)
        assert reg.time("a") is reg.time("b")

    def test_snapshot_and_json_roundtrip(self):
        reg = Registry()
        reg.incr("c")
        reg.observe("h", 2.0)
        reg.set_gauge("g", 1)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert json.loads(reg.to_json()) == snap

    def test_reset(self):
        reg = Registry()
        reg.incr("c")
        reg.reset()
        assert reg.metric_names() == []

    def test_enable_disable_chain(self):
        reg = Registry(enabled=False)
        assert reg.enable().enabled is True
        assert reg.disable().enabled is False


class TestDisableEnv:
    def test_env_values(self, monkeypatch):
        for value, expect in (("1", False), ("true", False), ("YES", False),
                              ("", True), ("0", True)):
            monkeypatch.setenv(DISABLE_ENV, value)
            assert _enabled_by_default() is expect
        monkeypatch.delenv(DISABLE_ENV)
        assert _enabled_by_default() is True
