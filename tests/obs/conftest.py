"""Observability-suite fixtures: a fresh, isolated obs stack per test."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture()
def fresh_obs():
    """Swap in an enabled Registry/Tracer/ProtocolEvents; restore after.

    Yields the registry (tracer and bus are reachable via obs.get_*).
    Tests using this fixture see only their own recordings, regardless of
    what the rest of the session did to the process-default instances.
    """
    saved = (obs.get_registry(), obs.get_tracer(), obs.get_events())
    registry = obs.set_registry(obs.Registry(enabled=True))
    obs.set_tracer(obs.Tracer(registry=registry))
    obs.set_events(obs.ProtocolEvents(registry=registry))
    try:
        yield registry
    finally:
        obs.set_registry(saved[0])
        obs.set_tracer(saved[1])
        obs.set_events(saved[2])
