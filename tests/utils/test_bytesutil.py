"""Unit + property tests for the byte-level codec helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bytesutil import b2i, constant_time_eq, i2b, i2b_fixed, xor_bytes


class TestI2B:
    def test_zero_is_one_byte(self):
        assert i2b(0) == b"\x00"

    def test_small_values(self):
        assert i2b(1) == b"\x01"
        assert i2b(255) == b"\xff"
        assert i2b(256) == b"\x01\x00"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            i2b(-1)

    @given(st.integers(min_value=0, max_value=1 << 256))
    def test_roundtrip(self, n):
        assert b2i(i2b(n)) == n

    @given(st.integers(min_value=1, max_value=1 << 256))
    def test_minimal_length(self, n):
        assert len(i2b(n)) == (n.bit_length() + 7) // 8


class TestI2BFixed:
    def test_pads_to_length(self):
        assert i2b_fixed(1, 4) == b"\x00\x00\x00\x01"

    def test_overflow_rejected(self):
        with pytest.raises(OverflowError):
            i2b_fixed(256, 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            i2b_fixed(-5, 4)

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_roundtrip_fixed(self, n):
        assert b2i(i2b_fixed(n, 16)) == n


class TestB2I:
    def test_empty_is_zero(self):
        assert b2i(b"") == 0

    def test_leading_zeros_ignored(self):
        assert b2i(b"\x00\x00\x05") == 5


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_empty(self):
        assert xor_bytes(b"", b"") == b""

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")

    @given(st.binary(max_size=256))
    def test_self_inverse(self, data):
        assert xor_bytes(data, data) == b"\x00" * len(data)

    @given(st.binary(min_size=1, max_size=128), st.binary(min_size=1, max_size=128))
    def test_involution(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert xor_bytes(xor_bytes(a, b), b) == a

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_commutative(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert xor_bytes(a, b) == xor_bytes(b, a)

    def test_leading_zero_bytes_preserved(self):
        # regression guard for the big-int implementation: zero-prefixed
        # results must keep their length
        assert xor_bytes(b"\x01\x02", b"\x01\x03") == b"\x00\x01"


class TestConstantTimeEq:
    def test_equal(self):
        assert constant_time_eq(b"secret", b"secret")

    def test_unequal(self):
        assert not constant_time_eq(b"secret", b"secreT")

    def test_length_difference(self):
        assert not constant_time_eq(b"short", b"longer-string")

    @given(st.binary(max_size=64))
    def test_reflexive(self, data):
        assert constant_time_eq(data, data)
