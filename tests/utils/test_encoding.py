"""Base64 / hex helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.utils.encoding import b64decode, b64encode, from_hex, to_hex


class TestBase64:
    def test_known_value(self):
        assert b64encode(b"hello") == "aGVsbG8="

    def test_empty(self):
        assert b64encode(b"") == ""
        assert b64decode("") == b""

    @given(st.binary(max_size=512))
    def test_roundtrip(self, data):
        assert b64decode(b64encode(data)) == data

    def test_invalid_chars_rejected(self):
        with pytest.raises(EncodingError):
            b64decode("not*base64!")

    def test_bad_padding_rejected(self):
        with pytest.raises(EncodingError):
            b64decode("AAA")

    def test_non_ascii_rejected(self):
        with pytest.raises(EncodingError):
            b64decode("aGVsbG8=é")


class TestHex:
    def test_known_value(self):
        assert to_hex(b"\x00\xff") == "00ff"
        assert from_hex("00ff") == b"\x00\xff"

    @given(st.binary(max_size=512))
    def test_roundtrip(self, data):
        assert from_hex(to_hex(data)) == data

    def test_invalid_rejected(self):
        with pytest.raises(EncodingError):
            from_hex("zz")

    def test_odd_length_rejected(self):
        with pytest.raises(EncodingError):
            from_hex("abc")
