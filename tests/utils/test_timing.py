"""Stopwatch and timing-sample helpers."""

import pytest

from repro.utils.timing import Stopwatch, TimingSample, measure


class TestStopwatch:
    def test_context_manager_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        assert first >= 0.0
        with sw:
            pass
        assert sw.elapsed >= first

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0


class TestTimingSample:
    def test_statistics(self):
        s = TimingSample("op")
        for v in (1.0, 2.0, 3.0):
            s.add(v)
        assert s.mean == pytest.approx(2.0)
        assert s.median == pytest.approx(2.0)
        assert s.best == pytest.approx(1.0)
        assert s.stdev == pytest.approx(1.0)
        assert len(s) == 3

    def test_empty_sample_safe(self):
        s = TimingSample("op")
        assert s.mean == 0.0 and s.median == 0.0 and s.best == 0.0 and s.stdev == 0.0


def test_measure_runs_n_times():
    calls = []
    sample = measure(lambda: calls.append(1), repeat=4, label="x")
    assert len(calls) == 4
    assert len(sample) == 4
    assert sample.label == "x"
