"""Unit tests for the socket backend's length-prefixed framing."""

from __future__ import annotations

import struct

import pytest

import zlib

from repro.net import framing
from repro.net.framing import (
    BATCH_FLAG_ZLIB,
    KIND_BATCH,
    KIND_DATA,
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    FrameDecoder,
    FramingError,
    decode_batch_payload,
    decode_body,
    encode_batch_frame,
    encode_batch_payload,
    encode_frame,
)


class TestRoundTrip:
    @pytest.mark.parametrize("kind", [KIND_DATA, KIND_REQUEST,
                                      KIND_RESPONSE, KIND_ERROR])
    def test_every_kind_round_trips(self, kind):
        frame = encode_frame(kind, 42, "peer:alice", b"payload bytes")
        (length,) = struct.unpack_from(">I", frame)
        assert length == len(frame) - framing.LENGTH_BYTES
        assert decode_body(frame[framing.LENGTH_BYTES:]) == \
            (kind, 42, "peer:alice", b"payload bytes")

    def test_empty_payload_and_zero_request_id(self):
        frame = encode_frame(KIND_DATA, 0, "broker:0", b"")
        assert decode_body(frame[4:]) == (KIND_DATA, 0, "broker:0", b"")

    def test_non_ascii_source_address(self):
        frame = encode_frame(KIND_DATA, 1, "peer:ålice", b"x")
        _, _, src, _ = decode_body(frame[4:])
        assert src == "peer:ålice"

    def test_large_request_id(self):
        frame = encode_frame(KIND_RESPONSE, 2**63, "b", b"x")
        assert decode_body(frame[4:])[1] == 2**63


class TestRejection:
    def test_unknown_kind_on_encode(self):
        with pytest.raises(FramingError, match="unknown frame kind"):
            encode_frame(0x7F, 1, "a", b"")

    def test_unknown_kind_on_decode(self):
        body = bytes(encode_frame(KIND_DATA, 1, "a", b"")[4:])
        with pytest.raises(FramingError, match="unknown frame kind"):
            decode_body(b"\x7f" + body[1:])

    def test_truncated_body(self):
        with pytest.raises(FramingError, match="truncated"):
            decode_body(b"\x00\x01")

    def test_body_shorter_than_source_address(self):
        body = framing._PREFIX.pack(KIND_DATA, 0, 500) + b"short"
        with pytest.raises(FramingError, match="shorter than its source"):
            decode_body(body)

    def test_undecodable_source_address(self):
        body = framing._PREFIX.pack(KIND_DATA, 0, 2) + b"\xff\xfe" + b"p"
        with pytest.raises(FramingError, match="undecodable source"):
            decode_body(body)

    def test_oversize_body_rejected_on_encode(self):
        big = b"\x00" * framing.max_body_bytes()
        with pytest.raises(FramingError, match="framing cap"):
            encode_frame(KIND_DATA, 1, "peer:alice", big)

    def test_announced_length_cap(self):
        with pytest.raises(FramingError, match="framing cap"):
            framing.check_length(framing.max_body_bytes() + 1)
        assert framing.check_length(10) == 10

    def test_cap_tracks_global_wire_cap(self):
        from repro.jxta import messages
        assert framing.max_body_bytes() == \
            messages.max_wire_bytes() + framing.HEADER_SLACK


class TestFrameDecoder:
    def test_single_frame_in_one_feed(self):
        decoder = FrameDecoder()
        out = decoder.feed(encode_frame(KIND_DATA, 7, "peer:a", b"hello"))
        assert out == [(KIND_DATA, 7, "peer:a", b"hello")]
        assert decoder.pending_bytes == 0

    def test_byte_at_a_time(self):
        decoder = FrameDecoder()
        frame = encode_frame(KIND_REQUEST, 9, "peer:bob", b"req body")
        collected = []
        for i in range(len(frame)):
            collected += decoder.feed(frame[i:i + 1])
        assert collected == [(KIND_REQUEST, 9, "peer:bob", b"req body")]

    def test_multiple_frames_in_one_feed(self):
        stream = (encode_frame(KIND_DATA, 1, "a", b"one") +
                  encode_frame(KIND_DATA, 2, "a", b"two") +
                  encode_frame(KIND_RESPONSE, 3, "b", b"three"))
        out = FrameDecoder().feed(stream)
        assert [payload for _, _, _, payload in out] == \
            [b"one", b"two", b"three"]

    def test_partial_trailing_frame_stays_buffered(self):
        whole = encode_frame(KIND_DATA, 1, "a", b"one")
        tail = encode_frame(KIND_DATA, 2, "a", b"two")
        decoder = FrameDecoder()
        out = decoder.feed(whole + tail[:5])
        assert len(out) == 1 and decoder.pending_bytes == 5
        assert decoder.feed(tail[5:])[0][3] == b"two"

    def test_poisoned_length_prefix_raises(self):
        decoder = FrameDecoder()
        with pytest.raises(FramingError, match="framing cap"):
            decoder.feed(struct.pack(">I", 2**31) + b"junk")


_BATCH_PAYLOADS = [b"one", b"", b"three three three", b"\x00binary\xff",
                   b"x" * 700]


class TestBatchPayload:
    def test_round_trip_uncompressed(self):
        packed = encode_batch_payload(_BATCH_PAYLOADS)
        assert packed[0] == 0
        assert decode_batch_payload(packed) == _BATCH_PAYLOADS

    def test_round_trip_compressed(self):
        payloads = [b"compressible " * 50] * 4
        packed = encode_batch_payload(payloads, compress_level=6)
        assert packed[0] & BATCH_FLAG_ZLIB
        assert decode_batch_payload(packed) == payloads

    def test_incompressible_blob_ships_raw(self):
        # Already-compressed bytes: zlib cannot shrink them, so the
        # encoder must fall back to the uncompressed form.
        noise = zlib.compress(b"seed material " * 100, 9)
        packed = encode_batch_payload([noise], compress_level=9,
                                      min_compress_bytes=1)
        assert packed[0] == 0
        assert decode_batch_payload(packed) == [noise]

    def test_small_blob_skips_compression(self):
        packed = encode_batch_payload([b"tiny"], compress_level=9,
                                      min_compress_bytes=512)
        assert packed[0] == 0

    def test_empty_batch_rejected(self):
        with pytest.raises(FramingError, match="at least one frame"):
            encode_batch_payload([])

    def test_frame_count_cap(self):
        with pytest.raises(FramingError, match="frame cap"):
            encode_batch_payload([b"x"] * (framing.MAX_BATCH_FRAMES + 1))

    def test_oversize_inner_frame_rejected(self):
        big = b"\x00" * (framing.max_body_bytes() + 1)
        with pytest.raises(FramingError, match="framing cap"):
            encode_batch_payload([b"ok", big])

    def test_truncated_prefix_rejected(self):
        with pytest.raises(FramingError, match="truncated batch"):
            decode_batch_payload(b"\x00\x00")

    def test_unknown_flags_rejected(self):
        packed = encode_batch_payload([b"x"])
        with pytest.raises(FramingError, match="unknown batch flags"):
            decode_batch_payload(bytes([packed[0] | 0x80]) + packed[1:])

    def test_zero_count_rejected(self):
        with pytest.raises(FramingError, match="count 0 out of range"):
            decode_batch_payload(framing._BATCH_PREFIX.pack(0, 0))

    def test_count_blob_mismatch_rejected(self):
        packed = encode_batch_payload([b"a", b"b"])
        lying = framing._BATCH_PREFIX.pack(0, 3) + \
            packed[framing._BATCH_PREFIX.size:]
        with pytest.raises(FramingError, match="shorter than its frame"):
            decode_batch_payload(lying)

    def test_truncated_inner_frame_rejected(self):
        packed = encode_batch_payload([b"payload bytes"])
        with pytest.raises(FramingError, match="truncated inside"):
            decode_batch_payload(packed[:-3])

    def test_trailing_bytes_rejected(self):
        packed = encode_batch_payload([b"a"])
        with pytest.raises(FramingError, match="trailing bytes"):
            decode_batch_payload(packed + b"junk")

    def test_corrupt_zlib_stream_rejected(self):
        packed = framing._BATCH_PREFIX.pack(BATCH_FLAG_ZLIB, 1) + b"not-zlib"
        with pytest.raises(FramingError, match="undecompressable"):
            decode_batch_payload(packed)

    def test_decompression_bomb_rejected(self):
        bomb = zlib.compress(b"\x00" * (framing._max_decompressed_bytes() + 64))
        packed = framing._BATCH_PREFIX.pack(BATCH_FLAG_ZLIB, 1) + bomb
        with pytest.raises(FramingError, match="inflates past"):
            decode_batch_payload(packed)


class TestBatchFraming:
    """BATCH wire units through the stream decoder, fuzzing read splits."""

    def test_batch_frame_round_trips(self):
        frame = encode_batch_frame("peer:a", _BATCH_PAYLOADS)
        out = FrameDecoder().feed(frame)
        assert len(out) == 1
        kind, request_id, src, payload = out[0]
        assert (kind, request_id, src) == (KIND_BATCH, 0, "peer:a")
        assert decode_batch_payload(payload) == _BATCH_PAYLOADS

    @pytest.mark.parametrize("compress_level", [0, 6])
    def test_every_split_boundary_decodes_identically(self, compress_level):
        # The satellite's fuzz: a batched wire unit handed to the
        # decoder split at *every* byte boundary must come out as the
        # identical frame sequence.
        frame = encode_batch_frame("peer:fuzz", _BATCH_PAYLOADS,
                                   compress_level=compress_level,
                                   min_compress_bytes=1)
        whole = FrameDecoder().feed(frame)
        for cut in range(1, len(frame)):
            decoder = FrameDecoder()
            out = decoder.feed(frame[:cut]) + decoder.feed(frame[cut:])
            assert out == whole, f"split at byte {cut} diverged"
            assert decode_batch_payload(out[0][3]) == _BATCH_PAYLOADS
        assert decoder.pending_bytes == 0

    def test_batch_between_singles_byte_at_a_time(self):
        stream = (encode_frame(KIND_DATA, 1, "a", b"before") +
                  encode_batch_frame("a", [b"in-1", b"in-2", b"in-3"]) +
                  encode_frame(KIND_REQUEST, 2, "a", b"after"))
        decoder = FrameDecoder()
        collected = []
        for i in range(len(stream)):
            collected += decoder.feed(stream[i:i + 1])
        kinds = [kind for kind, _, _, _ in collected]
        assert kinds == [KIND_DATA, KIND_BATCH, KIND_REQUEST]
        assert decode_batch_payload(collected[1][3]) == \
            [b"in-1", b"in-2", b"in-3"]
