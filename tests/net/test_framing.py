"""Unit tests for the socket backend's length-prefixed framing."""

from __future__ import annotations

import struct

import pytest

from repro.net import framing
from repro.net.framing import (
    KIND_DATA,
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    FrameDecoder,
    FramingError,
    decode_body,
    encode_frame,
)


class TestRoundTrip:
    @pytest.mark.parametrize("kind", [KIND_DATA, KIND_REQUEST,
                                      KIND_RESPONSE, KIND_ERROR])
    def test_every_kind_round_trips(self, kind):
        frame = encode_frame(kind, 42, "peer:alice", b"payload bytes")
        (length,) = struct.unpack_from(">I", frame)
        assert length == len(frame) - framing.LENGTH_BYTES
        assert decode_body(frame[framing.LENGTH_BYTES:]) == \
            (kind, 42, "peer:alice", b"payload bytes")

    def test_empty_payload_and_zero_request_id(self):
        frame = encode_frame(KIND_DATA, 0, "broker:0", b"")
        assert decode_body(frame[4:]) == (KIND_DATA, 0, "broker:0", b"")

    def test_non_ascii_source_address(self):
        frame = encode_frame(KIND_DATA, 1, "peer:ålice", b"x")
        _, _, src, _ = decode_body(frame[4:])
        assert src == "peer:ålice"

    def test_large_request_id(self):
        frame = encode_frame(KIND_RESPONSE, 2**63, "b", b"x")
        assert decode_body(frame[4:])[1] == 2**63


class TestRejection:
    def test_unknown_kind_on_encode(self):
        with pytest.raises(FramingError, match="unknown frame kind"):
            encode_frame(0x7F, 1, "a", b"")

    def test_unknown_kind_on_decode(self):
        body = bytes(encode_frame(KIND_DATA, 1, "a", b"")[4:])
        with pytest.raises(FramingError, match="unknown frame kind"):
            decode_body(b"\x7f" + body[1:])

    def test_truncated_body(self):
        with pytest.raises(FramingError, match="truncated"):
            decode_body(b"\x00\x01")

    def test_body_shorter_than_source_address(self):
        body = framing._PREFIX.pack(KIND_DATA, 0, 500) + b"short"
        with pytest.raises(FramingError, match="shorter than its source"):
            decode_body(body)

    def test_undecodable_source_address(self):
        body = framing._PREFIX.pack(KIND_DATA, 0, 2) + b"\xff\xfe" + b"p"
        with pytest.raises(FramingError, match="undecodable source"):
            decode_body(body)

    def test_oversize_body_rejected_on_encode(self):
        big = b"\x00" * framing.max_body_bytes()
        with pytest.raises(FramingError, match="framing cap"):
            encode_frame(KIND_DATA, 1, "peer:alice", big)

    def test_announced_length_cap(self):
        with pytest.raises(FramingError, match="framing cap"):
            framing.check_length(framing.max_body_bytes() + 1)
        assert framing.check_length(10) == 10

    def test_cap_tracks_global_wire_cap(self):
        from repro.jxta import messages
        assert framing.max_body_bytes() == \
            messages.max_wire_bytes() + framing.HEADER_SLACK


class TestFrameDecoder:
    def test_single_frame_in_one_feed(self):
        decoder = FrameDecoder()
        out = decoder.feed(encode_frame(KIND_DATA, 7, "peer:a", b"hello"))
        assert out == [(KIND_DATA, 7, "peer:a", b"hello")]
        assert decoder.pending_bytes == 0

    def test_byte_at_a_time(self):
        decoder = FrameDecoder()
        frame = encode_frame(KIND_REQUEST, 9, "peer:bob", b"req body")
        collected = []
        for i in range(len(frame)):
            collected += decoder.feed(frame[i:i + 1])
        assert collected == [(KIND_REQUEST, 9, "peer:bob", b"req body")]

    def test_multiple_frames_in_one_feed(self):
        stream = (encode_frame(KIND_DATA, 1, "a", b"one") +
                  encode_frame(KIND_DATA, 2, "a", b"two") +
                  encode_frame(KIND_RESPONSE, 3, "b", b"three"))
        out = FrameDecoder().feed(stream)
        assert [payload for _, _, _, payload in out] == \
            [b"one", b"two", b"three"]

    def test_partial_trailing_frame_stays_buffered(self):
        whole = encode_frame(KIND_DATA, 1, "a", b"one")
        tail = encode_frame(KIND_DATA, 2, "a", b"two")
        decoder = FrameDecoder()
        out = decoder.feed(whole + tail[:5])
        assert len(out) == 1 and decoder.pending_bytes == 5
        assert decoder.feed(tail[5:])[0][3] == b"two"

    def test_poisoned_length_prefix_raises(self):
        decoder = FrameDecoder()
        with pytest.raises(FramingError, match="framing cap"):
            decoder.feed(struct.pack(">I", 2**31) + b"junk")
