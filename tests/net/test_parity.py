"""Backend parity: the secure protocol behaves identically on both
transports.

The same secure flow — secureConnection + secureLogin for two clients,
a first (full) and a resumed secure message, then a malformed frame
from a rogue sender — runs once on the discrete-event simulator and
once over real asyncio loopback sockets.  The per-endpoint sequences
of accepted message types (recorded through the ``on_receive``
lifecycle hook), the delivered plaintexts, the sid-issuance count and
the ``wire.reject.*`` taxonomy counters must come out byte-for-byte
identical: the backend moves frames, the protocol above it must not be
able to tell which one it is riding.

The whole comparison runs twice: in ``legacy`` mode (no link
scheduler — the pre-batching wire) and in ``batched`` mode (every node
runs ``enable_link_batching`` with zlib negotiated via the
``link_caps`` exchange).  Within a mode the two backends must still
trace identically, and the traces must be mode-invariant too: batching
is a wire-level optimization the protocol cannot observe.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.core import Administrator, SecureBroker, SecureClientPeer
from repro.core.keystore import Keystore
from repro.crypto.drbg import HmacDrbg
from repro.jxta.messages import Message
from repro.net.linkq import LinkPolicy
from repro.net.tcp import TcpTransport
from repro.sim import SimNetwork, VirtualClock
from tests.conftest import TEST_POLICY, cached_keypair


def _wait_for(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _run_secure_flow(net, batched: bool = False) -> dict:
    """The whole flow on ``net``; returns the observable trace."""
    saved = obs.get_registry()
    obs.set_registry(obs.Registry(enabled=True))
    received: dict[str, list[str]] = {}
    texts: list[str] = []
    try:
        root = HmacDrbg(b"parity-world")
        admin = Administrator(root.fork(b"admin"),
                              keys=cached_keypair(512, "admin"))
        admin.register_user("alice", "pw-a", {"students"})
        admin.register_user("bob", "pw-b", {"students"})
        broker = SecureBroker.create(
            net, "broker:0", admin, root.fork(b"br"), name="B0",
            policy=TEST_POLICY, keys=cached_keypair(512, "broker"))

        def client(name: str, tag: bytes) -> SecureClientPeer:
            return SecureClientPeer(
                net, f"peer:{name}", root.fork(tag), admin.credential,
                name=f"{name}-app", policy=TEST_POLICY,
                keystore=Keystore(cached_keypair(512, f"client-{name}")))

        alice, bob = client("alice", b"al"), client("bob", b"bo")

        negotiated = None
        if batched:
            link_policy = LinkPolicy(compress_level=6, min_compress_bytes=64)
            for node in (broker, alice, bob):
                assert node.enable_link_batching(link_policy) is not None
            negotiated = (alice.negotiate_link("broker:0"),
                          bob.negotiate_link("broker:0"))

        def record(address: str):
            log = received.setdefault(address, [])
            return lambda message, src: log.append(message.msg_type)

        for node in (broker, alice, bob):
            endpoint = node.control.endpoint
            endpoint.configure(on_receive=record(endpoint.address))

        alice.secure_connect("broker:0")
        alice.secure_login("alice", "pw-a")
        bob.secure_connect("broker:0")
        bob.secure_login("bob", "pw-b")
        bob.events.subscribe("secure_message_received",
                             lambda **kw: texts.append(kw["text"]))

        assert alice.secure_msg_peer(str(bob.peer_id), "students",
                                     "parity one")
        assert _wait_for(lambda: len(texts) == 1)
        assert alice.secure_msg_peer(str(bob.peer_id), "students",
                                     "parity two")
        assert _wait_for(lambda: len(texts) == 2)

        # A rogue sender spraying a schema-invalid frame: the broker's
        # wire boundary must reject it identically on both backends.
        registry = obs.get_registry()
        malformed = Message("secure_connect_req")   # every field missing
        net.send("peer:rogue", "broker:0", malformed.to_wire())
        assert _wait_for(lambda: any(
            name.startswith("wire.reject.")
            for name in registry.metric_names()))

        rejects = {name: registry.count(name)
                   for name in registry.metric_names()
                   if name.startswith("wire.reject.")}
        sids_issued = broker.sids.issued_total

        for node in (alice, bob, broker):
            node.control.close()
        return {
            "received": received,
            "texts": list(texts),
            "rejects": rejects,
            "sids_issued": sids_issued,
            "negotiated": negotiated,
        }
    finally:
        obs.set_registry(saved)


@pytest.fixture(scope="module", params=["legacy", "batched"])
def mode(request) -> str:
    return request.param


@pytest.fixture(scope="module")
def sim_trace(mode) -> dict:
    return _run_secure_flow(SimNetwork(clock=VirtualClock()),
                            batched=mode == "batched")


@pytest.fixture(scope="module")
def tcp_trace(mode) -> dict:
    with TcpTransport(request_timeout=30.0) as net:
        return _run_secure_flow(net, batched=mode == "batched")


class TestBackendParity:
    def test_batched_mode_negotiated_compression(self, mode, sim_trace,
                                                 tcp_trace):
        expected = (6, 6) if mode == "batched" else None
        assert sim_trace["negotiated"] == expected
        assert tcp_trace["negotiated"] == expected

    def test_flow_succeeds_on_both_backends(self, sim_trace, tcp_trace):
        assert sim_trace["texts"] == ["parity one", "parity two"]
        assert tcp_trace["texts"] == ["parity one", "parity two"]

    def test_identical_frame_sequences(self, sim_trace, tcp_trace):
        assert set(sim_trace["received"]) == set(tcp_trace["received"])
        for address in sim_trace["received"]:
            assert sim_trace["received"][address] == \
                tcp_trace["received"][address], address

    def test_broker_saw_the_full_secure_conversation(self, sim_trace):
        broker_log = sim_trace["received"]["broker:0"]
        # two secureConnections, two secureLogins, in order
        assert broker_log.count("secure_connect_req") == 2
        assert broker_log.count("secure_login_req") == 2
        assert broker_log.index("secure_connect_req") < \
            broker_log.index("secure_login_req")

    def test_identical_reject_taxonomy(self, sim_trace, tcp_trace):
        assert sim_trace["rejects"] == tcp_trace["rejects"]
        assert sim_trace["rejects"]    # the rogue frame was counted

    def test_identical_sid_issuance(self, sim_trace, tcp_trace):
        # one fresh sid per secureConnection, none for the resumed send
        assert sim_trace["sids_issued"] == tcp_trace["sids_issued"] == 2
