"""The link-layer send scheduler: batching, overflow, breaker backpressure.

Unit tests drive a :class:`~repro.net.linkq.LinkScheduler` directly
through recording callbacks; the integration tests put a scheduler-backed
:class:`~repro.net.sim.SimTransport` under an injected link outage
(`repro.sim.faults`) and check the backpressure contract: bounded
queues, defer/drop per policy, a breaker that opens — and a clean,
deadlock-free drain on close.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.net import framing, linkq
from repro.net.linkq import FLAGS, LinkPolicy, LinkScheduler
from repro.net.sim import SIM_BATCH_MAGIC, SimTransport
from repro.overlay.policy import link_breaker_factory
from repro.sim import SimNetwork, VirtualClock
from repro.sim.faults import FaultPlan, LinkOutage


@pytest.fixture()
def fresh_obs():
    saved = (obs.get_registry(), obs.get_tracer(), obs.get_events())
    registry = obs.set_registry(obs.Registry(enabled=True))
    obs.set_tracer(obs.Tracer(registry=registry))
    obs.set_events(obs.ProtocolEvents(registry=registry))
    try:
        yield registry
    finally:
        obs.set_registry(saved[0])
        obs.set_tracer(saved[1])
        obs.set_events(saved[2])


class Wire:
    """Recording backend callbacks for a bare scheduler."""

    def __init__(self, delivered: bool = True) -> None:
        self.singles: list[tuple[str, str, bytes]] = []
        self.batches: list[tuple[str, str, bytes]] = []
        self.delivered = delivered

    def send_single(self, src: str, dst: str, payload: bytes) -> bool:
        self.singles.append((src, dst, payload))
        return self.delivered

    def send_batch(self, src: str, dst: str, payload: bytes) -> bool:
        self.batches.append((src, dst, payload))
        return self.delivered

    @property
    def units(self) -> int:
        return len(self.singles) + len(self.batches)

    def batched_payloads(self, index: int = -1) -> list[bytes]:
        return framing.decode_batch_payload(self.batches[index][2])


def scheduler(policy: LinkPolicy | None = None, wire: Wire | None = None,
              clock: VirtualClock | None = None, **kwargs) -> tuple:
    clock = clock or VirtualClock()
    wire = wire or Wire()
    sched = LinkScheduler(policy or LinkPolicy(),
                          clock_now=lambda: clock.now,
                          send_single=wire.send_single,
                          send_batch=wire.send_batch, **kwargs)
    return sched, wire, clock


class TestScheduling:
    def test_idle_link_flushes_immediately_as_legacy_frame(self):
        sched, wire, _clock = scheduler()
        assert sched.enqueue("a", "b", b"solo") is True
        assert wire.singles == [("a", "b", b"solo")]
        assert wire.batches == []
        assert sched.pending_frames() == 0

    def test_busy_link_coalesces_under_idle_heuristic(self):
        sched, wire, clock = scheduler()
        sched.enqueue("a", "b", b"first")            # idle -> ships now
        sched.enqueue("a", "b", b"second")           # hot link -> queues
        assert sched.pending_frames() == 1
        clock.advance(1.0)
        sched.pump()
        assert wire.singles == [("a", "b", b"first"), ("a", "b", b"second")]

    def test_quiet_link_goes_back_to_immediate(self):
        sched, wire, clock = scheduler()
        sched.enqueue("a", "b", b"one")
        clock.advance(LinkPolicy().idle_flush_s * 3)
        sched.enqueue("a", "b", b"two")              # link went quiet again
        assert [p for _, _, p in wire.singles] == [b"one", b"two"]

    def test_corked_burst_ships_one_batch_in_order(self):
        sched, wire, _clock = scheduler()
        payloads = [b"frame-%d" % i for i in range(6)]
        with sched.corked():
            for payload in payloads:
                sched.enqueue("a", "b", payload)
            assert wire.units == 0                   # held open
        assert wire.singles == []
        assert len(wire.batches) == 1
        assert wire.batched_payloads() == payloads

    def test_batch_frame_cap_chunks_units(self):
        policy = LinkPolicy(max_batch_frames=4)
        sched, wire, _clock = scheduler(policy)
        with sched.corked():
            for i in range(10):
                sched.enqueue("a", "b", b"p%d" % i)
        # 4 + 4 inside the cork (cap-triggered), 2 at cork exit
        assert [len(framing.decode_batch_payload(p))
                for _, _, p in wire.batches] == [4, 4, 2]

    def test_batch_byte_cap_chunks_units(self):
        policy = LinkPolicy(max_batch_bytes=1024)
        sched, wire, _clock = scheduler(policy)
        with sched.corked():
            for _ in range(4):
                sched.enqueue("a", "b", b"x" * 700)
        # no two 700-byte frames fit under 1024 together
        assert wire.units == 4

    def test_per_destination_queues_are_independent(self):
        sched, wire, _clock = scheduler()
        with sched.corked():
            sched.enqueue("a", "b", b"to-b-1")
            sched.enqueue("a", "c", b"to-c-1")
            sched.enqueue("a", "b", b"to-b-2")
        assert len(wire.batches) == 1               # a->b pair
        assert wire.batched_payloads() == [b"to-b-1", b"to-b-2"]
        assert wire.singles == [("a", "c", b"to-c-1")]

    def test_request_barrier_flush_link(self):
        sched, wire, _clock = scheduler()
        with sched.corked():
            sched.enqueue("a", "b", b"datagram")
            sched.flush_link("a", "b")
            assert wire.singles == [("a", "b", b"datagram")]

    def test_adaptive_window_widens_with_depth(self):
        policy = LinkPolicy(base_delay_s=0.002, max_delay_s=0.02)
        assert policy.delay_for(1) == pytest.approx(0.002)
        assert policy.delay_for(5) == pytest.approx(0.010)
        assert policy.delay_for(1000) == pytest.approx(0.020)

    def test_defer_hook_arms_and_pump_flushes_on_deadline(self):
        timers: list[float] = []
        sched, wire, clock = scheduler(
            defer=lambda delay, cb: timers.append(delay))
        sched.enqueue("a", "b", b"warm")             # make the link hot
        sched.enqueue("a", "b", b"queued")
        assert timers and timers[-1] <= LinkPolicy().max_delay_s
        sched.pump()                                 # window not expired yet
        assert sched.pending_frames() == 1
        clock.advance(LinkPolicy().max_delay_s)
        sched.pump()
        assert sched.pending_frames() == 0
        assert [p for _, _, p in wire.singles] == [b"warm", b"queued"]


class TestCompression:
    def test_negotiated_level_compresses_large_batches(self):
        sched, wire, _clock = scheduler(LinkPolicy(min_compress_bytes=64))
        sched.set_link_compression("a", "b", 6)
        with sched.corked():
            for _ in range(8):
                sched.enqueue("a", "b", b"compressible " * 10)
        payload = wire.batches[0][2]
        assert payload[0] & framing.BATCH_FLAG_ZLIB
        assert framing.decode_batch_payload(payload) == \
            [b"compressible " * 10] * 8

    def test_unnegotiated_link_ships_raw(self):
        sched, wire, _clock = scheduler(LinkPolicy(min_compress_bytes=64))
        sched.set_link_compression("a", "c", 6)      # a different link
        with sched.corked():
            for _ in range(8):
                sched.enqueue("a", "b", b"compressible " * 10)
        assert wire.batches[0][2][0] == 0

    def test_compression_flag_is_a_kill_switch(self):
        sched, wire, _clock = scheduler(LinkPolicy(min_compress_bytes=64))
        sched.set_link_compression("a", "b", 9)
        with linkq.flags(frame_compression=False):
            with sched.corked():
                for _ in range(8):
                    sched.enqueue("a", "b", b"compressible " * 10)
        assert wire.batches[0][2][0] == 0

    def test_compression_metrics(self, fresh_obs):
        sched, wire, _clock = scheduler(LinkPolicy(min_compress_bytes=64))
        sched.set_link_compression("a", "b", 6)
        with sched.corked():
            for _ in range(8):
                sched.enqueue("a", "b", b"compressible " * 10)
        assert fresh_obs.count("net.compress.units") == 1
        assert fresh_obs.count("net.compress.bytes_out") < \
            fresh_obs.count("net.compress.bytes_in")


class TestBackpressure:
    def test_overflow_drop_sheds_newest_and_stays_bounded(self, fresh_obs):
        policy = LinkPolicy(max_queue_frames=4, overflow="drop")
        sched, wire, _clock = scheduler(policy)
        with sched.corked():
            results = [sched.enqueue("a", "b", b"f%d" % i) for i in range(6)]
            assert results == [True] * 4 + [False, False]
            assert sched.pending_frames() == 4
        assert fresh_obs.count("net.queue.drop") == 2
        assert wire.batched_payloads() == [b"f0", b"f1", b"f2", b"f3"]

    def test_overflow_defer_force_flushes(self, fresh_obs):
        policy = LinkPolicy(max_queue_frames=4, overflow="defer")
        sched, wire, _clock = scheduler(policy)
        with sched.corked():
            for i in range(6):
                assert sched.enqueue("a", "b", b"f%d" % i) is not False
            # the 5th enqueue hit the cap and flushed the first four
            assert sched.pending_frames() == 2
        assert fresh_obs.count("net.queue.defer") == 1
        assert sum(len(framing.decode_batch_payload(p))
                   for _, _, p in wire.batches) == 6

    def test_breaker_opens_on_failed_flushes_then_fails_fast(self):
        clock = VirtualClock()
        wire = Wire(delivered=False)                 # every unit is lost
        sched, wire, clock = scheduler(
            wire=wire, clock=clock,
            breaker_factory=link_breaker_factory(clock, failure_threshold=3,
                                                 reset_timeout_s=5.0))
        for i in range(3):
            # idle gaps: each send flushes (and fails) on its own
            clock.advance(LinkPolicy().idle_flush_s * 2)
            assert sched.enqueue("a", "dead", b"lost-%d" % i) is False
        # three failed deliveries opened the breaker: sends shed instantly
        clock.advance(LinkPolicy().idle_flush_s * 2)
        assert sched.enqueue("a", "dead", b"after") is False
        assert wire.units == 3
        # cooldown elapses -> half-open probe goes through again
        clock.advance(5.0)
        wire.delivered = True
        assert sched.enqueue("a", "dead", b"probe") is True
        assert wire.singles[-1][2] == b"probe"

    def test_depth_gauge_tracks_queue(self, fresh_obs):
        sched, _wire, _clock = scheduler()
        with sched.corked():
            sched.enqueue("a", "b", b"one")
            sched.enqueue("a", "b", b"two")
            assert fresh_obs.gauge("net.queue.depth").value == 2
        assert fresh_obs.gauge("net.queue.depth").value == 0


class TestOutageIntegration:
    """The satellite: queue overflow under an injected outage."""

    def _world(self, policy: LinkPolicy, threshold: int = 3):
        net = SimNetwork(clock=VirtualClock())
        rx = SimTransport(net)
        got: list[bytes] = []
        rx.register("rx", lambda frame: got.append(frame.payload) or None)
        tx = SimTransport(net)
        tx.configure_links(policy, breaker_factory=link_breaker_factory(
            net.clock, failure_threshold=threshold, reset_timeout_s=10.0))
        return net, tx, got

    def test_outage_trips_breaker_and_bounds_the_queue(self, fresh_obs):
        policy = LinkPolicy(max_queue_frames=8, overflow="drop")
        net, tx, got = self._world(policy)
        FaultPlan(LinkOutage("tx", "rx", start=0.0, heal_at=60.0)).install(net)
        shed = 0
        with tx.scheduler.corked():
            for i in range(64):
                if tx.send("tx", "rx", b"blackhole-%d" % i) is False:
                    shed += 1
                assert tx.scheduler.pending_frames() <= policy.max_queue_frames
        assert got == []                             # outage ate everything
        assert shed > 0                              # bounded, not buffered
        assert fresh_obs.count("net.queue.drop") > 0
        assert fresh_obs.count("faults.link_outage.injected") > 0
        # breaker is open: a fresh send fails fast without queue growth
        assert tx.send("tx", "rx", b"fail-fast") is False
        assert tx.scheduler.pending_frames() == 0

    def test_defer_policy_keeps_paying_flushes_during_outage(self, fresh_obs):
        policy = LinkPolicy(max_queue_frames=4, overflow="defer")
        net, tx, _got = self._world(policy, threshold=100)
        FaultPlan(LinkOutage("tx", "rx", start=0.0, heal_at=60.0)).install(net)
        with tx.scheduler.corked():
            for i in range(32):
                tx.send("tx", "rx", b"deferred-%d" % i)
                assert tx.scheduler.pending_frames() <= policy.max_queue_frames
        assert fresh_obs.count("net.queue.defer") > 0

    def test_recovery_after_heal_and_cooldown(self):
        policy = LinkPolicy(max_queue_frames=8, overflow="drop")
        net, tx, got = self._world(policy)
        FaultPlan(LinkOutage("tx", "rx", start=0.0, heal_at=1.0)).install(net)
        for i in range(8):
            tx.send("tx", "rx", b"lost-%d" % i)
        assert got == []
        net.clock.advance(30.0)                      # heal + breaker cooldown
        assert tx.send("tx", "rx", b"revived") is True
        assert got == [b"revived"]

    def test_unregister_drains_without_deadlock(self):
        policy = LinkPolicy(max_queue_frames=8, overflow="drop")
        net, tx, got = self._world(policy, threshold=100)
        FaultPlan(LinkOutage("tx", "rx", start=0.0, heal_at=60.0)).install(net)
        with tx.scheduler.corked():
            for i in range(4):
                tx.send("tx", "rx", b"stranded-%d" % i)
            # an endpoint disappearing mid-cork must flush-and-go, even
            # though every delivery fails against the outage
            tx.unregister("tx")
        assert tx.scheduler.pending_frames("tx") == 0
        assert got == []


class TestLegacyByteIdentity:
    """Flags off => the wire is indistinguishable from no scheduler."""

    def _deliveries(self, use_scheduler: bool, flag_on: bool) -> list[bytes]:
        net = SimNetwork(clock=VirtualClock())
        seen: list[bytes] = []
        net.add_interceptor(lambda frame: seen.append(frame.payload) or frame)
        rx = SimTransport(net)
        rx.register("rx", lambda frame: None)
        tx = SimTransport(net)
        if use_scheduler:
            tx.configure_links(LinkPolicy())
        with linkq.flags(frame_batching=flag_on):
            with tx.corked():
                for i in range(8):
                    tx.send("tx", "rx", b"legacy-%d" % i)
        return seen

    def test_flag_off_reproduces_the_unscheduled_wire(self):
        bare = self._deliveries(use_scheduler=False, flag_on=True)
        killed = self._deliveries(use_scheduler=True, flag_on=False)
        assert killed == bare
        assert all(not p.startswith(SIM_BATCH_MAGIC) for p in killed)

    def test_flag_on_batches_the_same_traffic(self):
        batched = self._deliveries(use_scheduler=True, flag_on=True)
        assert len(batched) == 1
        assert batched[0].startswith(SIM_BATCH_MAGIC)

    def test_flags_context_restores(self):
        assert FLAGS.frame_batching and FLAGS.frame_compression
        with linkq.flags(all=False):
            assert not FLAGS.frame_batching
        with linkq.flags(frame_compression=False):
            assert FLAGS.frame_batching
        assert FLAGS.frame_batching and FLAGS.frame_compression
        with pytest.raises(ValueError, match="unknown link flag"):
            FLAGS.apply(warp_drive=True)


class TestPolicyValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            LinkPolicy(max_batch_frames=0)
        with pytest.raises(ValueError):
            LinkPolicy(max_queue_frames=0)
        with pytest.raises(ValueError):
            LinkPolicy(overflow="panic")
        with pytest.raises(ValueError):
            LinkPolicy(compress_level=10)
        with pytest.raises(ValueError):
            LinkPolicy(delta_batch=0)

    def test_negotiated_level_validated(self):
        sched, _wire, _clock = scheduler()
        with pytest.raises(ValueError):
            sched.set_link_compression("a", "b", 11)
