"""WallClock: the TransportClock surface over real monotonic time."""

from __future__ import annotations

import time

import pytest

from repro.net.clock import WallClock
from repro.sim.clock import VirtualClock


class TestWallClock:
    def test_zeroed_at_construction_and_monotonic(self):
        clock = WallClock()
        first = clock.now
        assert first >= 0.0
        assert clock.now >= first

    def test_advance_really_sleeps(self):
        clock = WallClock()
        t0 = time.monotonic()
        clock.advance(0.05)
        assert time.monotonic() - t0 >= 0.045

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            WallClock().advance(-1.0)

    def test_network_and_cpu_are_accounting_only(self):
        clock = WallClock()
        t0 = time.monotonic()
        clock.advance_network(100.0)
        clock.charge_cpu(100.0)
        assert time.monotonic() - t0 < 1.0      # no sleeping happened
        assert clock.network_time == 100.0
        assert clock.cpu_time == 100.0

    def test_cpu_section_measures_real_work(self):
        clock = WallClock()
        with clock.cpu_section():
            time.sleep(0.02)
        assert clock.cpu_time >= 0.015

    def test_cpu_scale_applies(self):
        clock = WallClock()
        clock.cpu_scale = 2.0
        clock.charge_cpu(1.0)
        assert clock.cpu_time == 2.0

    def test_reset(self):
        clock = WallClock()
        clock.charge_cpu(5.0)
        clock.advance_network(5.0)
        clock.reset()
        assert clock.cpu_time == 0.0 and clock.network_time == 0.0
        assert clock.now < 1.0


class TestClockSurfaceParity:
    """Both clocks satisfy the protocol the overlay is written against."""

    @pytest.mark.parametrize("clock", [WallClock(), VirtualClock()])
    def test_transport_clock_surface(self, clock):
        for attr in ("now", "advance", "advance_network", "charge_cpu",
                     "cpu_section", "reset"):
            assert hasattr(clock, attr)
        with clock.cpu_section():
            pass
