"""TcpTransport: real 127.0.0.1 sockets behind the Transport contract.

Every test runs against OS-assigned loopback ports; nothing here is
simulated.  The suite pins down the semantics the overlay's retry and
failover machinery was written against (see ``repro.net.base``), plus
the drain-on-unregister guarantees ``Endpoint.close()`` relies on.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import NetworkError
from repro.net.base import Frame, Transport, as_transport
from repro.net.tcp import TcpTransport


def wait_for(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


@pytest.fixture()
def tcp():
    transport = TcpTransport(request_timeout=10.0, connect_timeout=5.0)
    yield transport
    transport.close()


class TestContract:
    def test_satisfies_the_transport_protocol(self, tcp):
        assert isinstance(tcp, Transport)
        assert as_transport(tcp) is tcp

    def test_register_assigns_a_real_port(self, tcp):
        tcp.register("broker:0", lambda frame: None)
        host, port = tcp.location("broker:0")
        assert host == "127.0.0.1" and port > 0
        assert tcp.is_registered("broker:0")

    def test_duplicate_register_raises(self, tcp):
        tcp.register("broker:0", lambda frame: None)
        with pytest.raises(NetworkError, match="already registered"):
            tcp.register("broker:0", lambda frame: None)

    def test_send_to_unknown_destination_raises(self, tcp):
        with pytest.raises(NetworkError, match="no endpoint registered"):
            tcp.send("peer:a", "peer:ghost", b"x")

    def test_request_to_unknown_destination_raises(self, tcp):
        with pytest.raises(NetworkError, match="no endpoint registered"):
            tcp.request("peer:a", "peer:ghost", b"x")

    def test_location_of_unknown_address_raises(self, tcp):
        with pytest.raises(NetworkError):
            tcp.location("nowhere")


class TestDatagrams:
    def test_send_delivers_the_frame(self, tcp):
        got: list[Frame] = []
        tcp.register("svc", lambda frame: got.append(frame))
        assert tcp.send("peer:a", "svc", b"payload") is True
        assert wait_for(lambda: got)
        frame = got[0]
        assert (frame.src, frame.dst, frame.payload) == \
            ("peer:a", "svc", b"payload")

    def test_datagram_order_is_preserved_per_link(self, tcp):
        got: list[bytes] = []
        tcp.register("svc", lambda frame: got.append(frame.payload))
        for i in range(50):
            assert tcp.send("peer:a", "svc", b"%d" % i)
        assert wait_for(lambda: len(got) == 50)
        assert got == [b"%d" % i for i in range(50)]

    def test_oversize_datagram_is_dropped_not_raised(self, tcp):
        from repro.net import framing
        tcp.register("svc", lambda frame: None)
        huge = b"\x00" * (framing.max_body_bytes() + 1)
        assert tcp.send("peer:a", "svc", huge) is False


class TestRequests:
    def test_round_trip(self, tcp):
        tcp.register("svc", lambda frame: frame.payload.upper())
        assert tcp.request("peer:a", "svc", b"hello") == b"HELLO"

    def test_handler_answering_none_raises_like_the_sim(self, tcp):
        tcp.register("svc", lambda frame: None)
        with pytest.raises(NetworkError, match="did not answer"):
            tcp.request("peer:a", "svc", b"q")

    def test_handler_exception_surfaces_as_network_error(self, tcp):
        def boom(frame):
            raise RuntimeError("handler blew up")
        tcp.register("svc", boom)
        with pytest.raises(NetworkError, match="handler failed"):
            tcp.request("peer:a", "svc", b"q")

    def test_concurrent_requests_multiplex_on_one_connection(self, tcp):
        """Slow and fast requests from one src interleave by request id."""
        release = threading.Event()

        def handler(frame):
            if frame.payload == b"slow":
                # Generous ceiling: if this ever expired before the fast
                # request finished, "slow" could land first and the
                # ordering assertion below would flake under load.
                release.wait(30.0)
            return frame.payload

        tcp.register("svc", handler)
        results: dict[str, bytes] = {}

        def call(tag, payload):
            results[tag] = tcp.request("peer:a", "svc", payload)

        slow = threading.Thread(target=call, args=("slow", b"slow"))
        slow.start()
        # The fast request completes while the slow one is still parked.
        assert tcp.request("peer:a", "svc", b"fast") == b"fast"
        assert "slow" not in results
        release.set()
        slow.join(5.0)
        assert results["slow"] == b"slow"

    def test_nested_request_from_inside_a_handler(self, tcp):
        """The federation-handshake shape: the responder calls back into
        the still-blocked initiator mid-request."""
        tcp.register("initiator", lambda frame: b"pong:" + frame.payload)

        def responder_handler(frame):
            echoed = tcp.request("responder", "initiator", b"nested")
            return b"outer:" + echoed

        tcp.register("responder", responder_handler)
        assert tcp.request("initiator", "responder", b"go") == \
            b"outer:pong:nested"


class TestLifecycleHooks:
    def test_connect_and_close_fire_once_per_peer(self, tcp):
        connected: list[str] = []
        closed: list[str] = []
        tcp.register("svc", lambda frame: frame.payload,
                     on_connect=connected.append, on_close=closed.append)
        tcp.request("peer:a", "svc", b"one")
        tcp.request("peer:a", "svc", b"two")
        assert wait_for(lambda: connected == ["peer:a"])
        assert closed == []
        tcp.unregister("svc")
        assert wait_for(lambda: closed == ["peer:a"])


class TestDrainOnUnregister:
    def test_unregister_fails_the_owners_in_flight_requests(self, tcp):
        """An endpoint closed mid-request cannot leak a hung caller."""
        entered = threading.Event()
        release = threading.Event()

        def handler(frame):
            entered.set()
            release.wait(10.0)
            return b"too late"

        tcp.register("svc", handler)
        tcp.register("caller", lambda frame: None)
        errors: list[Exception] = []

        def call():
            try:
                tcp.request("caller", "svc", b"q")
            except NetworkError as exc:
                errors.append(exc)

        thread = threading.Thread(target=call)
        thread.start()
        assert entered.wait(5.0)
        tcp.unregister("caller")
        thread.join(5.0)
        release.set()
        assert not thread.is_alive()
        # Either drain path is a prompt, clean failure: the owner scan
        # ("closed with the request in flight") or the connection reader
        # observing its socket die ("connection ... was lost").
        assert errors
        assert ("closed with the request in flight" in str(errors[0])
                or "was lost" in str(errors[0]))

    def test_unregister_drops_the_listening_socket(self, tcp):
        tcp.register("svc", lambda frame: frame.payload)
        tcp.unregister("svc")
        assert not tcp.is_registered("svc")
        with pytest.raises(NetworkError):
            tcp.request("peer:a", "svc", b"q")

    def test_unregister_closes_inbound_connections(self, tcp):
        closed: list[str] = []
        tcp.register("svc", lambda frame: frame.payload,
                     on_close=closed.append)
        tcp.request("peer:a", "svc", b"warm the connection")
        tcp.unregister("svc")
        assert wait_for(lambda: "peer:a" in closed)

    def test_unregister_is_idempotent(self, tcp):
        tcp.register("svc", lambda frame: None)
        tcp.unregister("svc")
        tcp.unregister("svc")          # no-op, no raise


class TestClose:
    def test_close_tears_everything_down(self):
        tcp = TcpTransport()
        tcp.register("a", lambda frame: frame.payload)
        tcp.register("b", lambda frame: frame.payload)
        tcp.request("a", "b", b"x")
        tcp.close()
        assert not tcp.is_registered("a") and not tcp.is_registered("b")
        with pytest.raises(NetworkError, match="closed"):
            tcp.register("c", lambda frame: None)

    def test_close_is_idempotent(self):
        tcp = TcpTransport()
        tcp.register("a", lambda frame: None)
        tcp.close()
        tcp.close()

    def test_context_manager(self):
        with TcpTransport() as tcp:
            tcp.register("a", lambda frame: frame.payload)
            tcp.register("b", lambda frame: frame.payload)
            assert tcp.request("a", "b", b"ping") == b"ping"
        assert not tcp.is_registered("a")


class TestEndpointOverTcp:
    """The overlay's Endpoint riding the socket backend directly."""

    def test_message_round_trip_and_clean_close(self, tcp):
        from repro.jxta.endpoint import Endpoint
        from repro.jxta.messages import Message

        server = Endpoint(tcp, "svc")

        def echo(message, src):
            out = Message("echo_resp")
            out.add_text("text", message.get_text("text"))
            return out

        server.configure(handlers={"echo_req": echo})
        client = Endpoint(tcp, "peer:a")
        req = Message("echo_req")
        req.add_text("text", "over real sockets")
        resp = client.request("svc", req)
        assert resp.get_text("text") == "over real sockets"

        server.close()
        client.close()
        assert server.closed and client.closed
        assert not tcp.is_registered("svc")
        with pytest.raises(NetworkError, match="closed"):
            client.send("svc", req)
