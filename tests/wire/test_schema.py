"""Unit tests for the declarative schema layer and message hardening."""

from __future__ import annotations

import pytest

from frames import fresh_registry
from repro import wire
from repro.errors import FrameTooLargeError, JxtaError
from repro.jxta import messages
from repro.jxta.messages import Message
from repro.wire.schema import DEFAULT_MAX_SIZE, Field
from repro.xmllib import Element


class TestField:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Field("x", "float")

    def test_unknown_json_type_rejected(self):
        with pytest.raises(ValueError):
            Field("x", "json", json_type="tuple")

    def test_numeric_requires_text_kind(self):
        with pytest.raises(ValueError):
            Field("x", "bytes", numeric=True)

    def test_default_size_bounds_by_kind(self):
        for kind, expected in DEFAULT_MAX_SIZE.items():
            assert Field("x", kind).max_size == expected

    def test_explicit_none_means_uncapped(self):
        field = Field("x", "text", max_size=None)
        assert field.check("t", "y" * (DEFAULT_MAX_SIZE["text"] + 1))


class TestDecode:
    def test_every_sample_survives_a_wire_round_trip(self):
        for spec in wire.specs():
            raw = spec.sample_message().to_wire()
            assert wire.check(Message.from_wire(raw)), spec.msg_type

    def test_typed_views_numeric_and_json(self):
        req = Message("file_req")
        req.add_text("file_name", "notes.txt")
        req.add_text("offset", "4096")
        req.add_text("length", "512")
        frame = wire.decode(req)
        assert frame["offset"] == 4096 and frame["length"] == 512
        ok = Message("login_ok")
        ok.add_json("groups", ["students", "teachers"])
        ok.add_text("peer_id", "urn:jxta:p0")
        assert wire.decode(ok)["groups"] == ["students", "teachers"]

    def test_unknown_type_raises_classified(self):
        with pytest.raises(wire.WireRejected) as info:
            wire.decode(Message("no_such_frame"))
        assert info.value.reason == "unknown_type"
        assert isinstance(info.value, JxtaError)

    def test_wrong_json_shape_rejected(self):
        ok = Message("login_ok")
        ok.add_json("groups", {"not": "a list"})
        ok.add_text("peer_id", "urn:jxta:p0")
        with pytest.raises(wire.WireRejected) as info:
            wire.decode(ok)
        assert info.value.reason == "bad_json"

    def test_view_access(self):
        resp = Message("peer_status_resp")
        resp.add_text("peer_id", "urn:jxta:p0")
        resp.add_text("online", "true")
        frame = wire.decode(resp)
        assert frame["online"] == "true"
        assert frame.get("username") is None
        assert frame.get("username", "?") == "?"
        assert frame.has("peer_id") and "peer_id" in frame
        assert not frame.has("last_seen")
        with pytest.raises(JxtaError):
            frame["last_seen"]

    def test_decode_is_memoized_until_mutation(self):
        resp = Message("task_resp")
        resp.add_text("result", "ok")
        first = wire.decode(resp)
        assert wire.decode(resp) is first
        resp.add_text("rider", "x")  # any add_* drops the cached view
        with pytest.raises(wire.WireRejected) as info:
            wire.decode(resp)
        assert info.value.reason == "unknown_field"


class TestSanitize:
    def test_metric_unsafe_characters_folded(self):
        assert wire.sanitize_msg_type("weird type!") == "weird-type-"

    def test_empty_type_becomes_unknown(self):
        assert wire.sanitize_msg_type("") == "unknown"

    def test_long_type_truncated(self):
        assert len(wire.sanitize_msg_type("a" * 100)) == 48


class TestMessageHardening:
    def test_add_text_refuses_non_str(self):
        msg = Message("chat")
        with pytest.raises(JxtaError):
            msg.add_text("text", 42)
        with pytest.raises(JxtaError):
            msg.add_text("text", b"bytes")

    def test_add_xml_refuses_non_element(self):
        with pytest.raises(JxtaError):
            Message("adv_push").add_xml("adv", "<Doc/>")

    def test_wire_cap_configurable_and_enforced(self):
        previous = messages.set_max_wire_bytes(128)
        try:
            big = Message("task_resp")
            big.add_text("result", "x" * 256)
            with pytest.raises(FrameTooLargeError):
                Message.from_wire(big.to_wire())
            assert messages.max_wire_bytes() == 128
        finally:
            messages.set_max_wire_bytes(previous)
        assert messages.max_wire_bytes() == previous

    def test_wire_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            messages.set_max_wire_bytes(0)

    def test_oversize_counted_flat_at_the_boundary(self, plain_world):
        from repro.jxta import Endpoint

        rogue = Endpoint(plain_world.net, "rogue:oversize")
        broker_ep = plain_world.broker.control.endpoint
        big = Message("task_resp")
        big.add_text("result", "x" * 512)
        previous = messages.set_max_wire_bytes(256)
        try:
            with fresh_registry() as registry:
                assert rogue.send("broker:0", big)
                assert registry.count("wire.reject.oversize") == 1
        finally:
            messages.set_max_wire_bytes(previous)
        assert broker_ep.metrics.count(
            "rx.undecodable.FrameTooLargeError") == 1
