"""Malformed-frame fuzzing against live endpoints.

For every registered frame, mutate a valid instance (drop a required
field, wrong encoding, oversized payload, junk JSON, duplicate element,
forged rider, unknown msg_type) and deliver it to a live broker or
client.  Each delivery must be absorbed without an exception and must
increment exactly one ``wire.reject.*`` counter.
"""

from __future__ import annotations

import pytest

from frames import fresh_registry, mutations, wire_reject_counts
from repro import wire
from repro.errors import NetworkError
from repro.jxta import Endpoint, Message
from repro.jxta.ids import random_pipe_id
from repro.xmllib import Element


def _deliver_all(world, target: str, spec) -> None:
    rogue = Endpoint(world.net, "rogue:fuzz")
    endpoint = (world.broker if target == "broker:0" else world.alice)\
        .control.endpoint
    try:
        for label, malformed, reason in mutations(spec):
            rejected_before = endpoint.metrics.count("rx.rejected")
            expected = f"wire.reject.{spec.msg_type}.{reason}"
            with fresh_registry() as registry:
                assert rogue.send(target, malformed), label
                assert wire_reject_counts(registry) == {expected: 1}, label
            assert endpoint.metrics.count(
                "rx.rejected") == rejected_before + 1, label
    finally:
        rogue.close()


@pytest.mark.parametrize("msg_type", sorted(wire.REGISTRY))
def test_mutations_rejected_at_broker(plain_world, msg_type):
    _deliver_all(plain_world, "broker:0", wire.REGISTRY[msg_type])


@pytest.mark.parametrize(
    "msg_type", ["adv_push", "peer_joined", "peer_left", "pipe_data", "chat"])
def test_mutations_rejected_at_client(plain_world, msg_type):
    _deliver_all(plain_world, "peer:alice", wire.REGISTRY[msg_type])


def test_unknown_msg_type_counted(plain_world):
    rogue = Endpoint(plain_world.net, "rogue:fuzz")
    forged = Message("totally_made_up")
    forged.add_text("x", "1")
    with fresh_registry() as registry:
        assert rogue.send("broker:0", forged)
        assert wire_reject_counts(registry) == {
            "wire.reject.totally_made_up.unknown_type": 1}


def test_unknown_msg_type_request_goes_unanswered(plain_world):
    rogue = Endpoint(plain_world.net, "rogue:fuzz")
    with fresh_registry() as registry:
        with pytest.raises(NetworkError):
            rogue.request("broker:0", Message("totally_made_up"))
        assert registry.count(
            "wire.reject.totally_made_up.unknown_type") == 1


def test_metric_hostile_msg_type_sanitized(plain_world):
    rogue = Endpoint(plain_world.net, "rogue:fuzz")
    with fresh_registry() as registry:
        assert rogue.send("broker:0", Message("evil type.name"))
        assert wire_reject_counts(registry) == {
            "wire.reject.evil-type-name.unknown_type": 1}


class TestPipeInner:
    """The pipe demux re-validates the nested frame."""

    def _pipe_to_alice(self, world):
        control = world.alice.control
        pipe_id = random_pipe_id(control.drbg)
        control.pipes.create_input_pipe(pipe_id, "students")
        return control, str(pipe_id)

    def test_non_frame_inner_counted_bad_inner(self, plain_world):
        control, pipe_key = self._pipe_to_alice(plain_world)
        rogue = Endpoint(plain_world.net, "rogue:fuzz")
        outer = Message("pipe_data")
        outer.add_text("pipe_id", pipe_key)
        outer.add_xml("inner", Element("NotAFrame"))
        with fresh_registry() as registry:
            assert rogue.send("peer:alice", outer)
            assert wire_reject_counts(registry) == {
                "wire.reject.pipe_data.bad_inner": 1}
        assert control.endpoint.metrics.count("pipe.bad_inner") == 1

    def test_unknown_inner_type_rejected_before_delivery(self, plain_world):
        control, pipe_key = self._pipe_to_alice(plain_world)
        rogue = Endpoint(plain_world.net, "rogue:fuzz")
        inner = Message("totally_made_up")
        inner.add_text("x", "1")
        outer = Message("pipe_data")
        outer.add_text("pipe_id", pipe_key)
        outer.add_xml("inner", inner.to_element())
        with fresh_registry() as registry:
            assert rogue.send("peer:alice", outer)
            assert wire_reject_counts(registry) == {
                "wire.reject.totally_made_up.unknown_type": 1}
        assert control.endpoint.metrics.count("pipe.rejected") == 1
        assert not control.pipes.get(pipe_key).received
