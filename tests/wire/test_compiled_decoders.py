"""Compiled decoders must be indistinguishable from the reference.

``FrameSpec.compiled()`` specializes the per-field interpretive loop
into a closure for the dispatch hot path; ``FrameSpec.decode`` stays
the reference implementation.  For every frame in the catalogue the two
must agree byte-for-byte: same accepted values on the valid sample,
same :class:`WireRejected` ``(msg_type, reason)`` on every entry of the
mutation-fuzz corpus.
"""

from __future__ import annotations

import pytest

from frames import mutations
from repro import perf, wire
from repro.jxta.messages import Message
from repro.wire.schema import WireRejected


@pytest.mark.parametrize("msg_type", sorted(wire.REGISTRY))
class TestDifferential:
    def test_sample_accepted_identically(self, msg_type):
        spec = wire.REGISTRY[msg_type]
        sample = spec.sample_message()
        reference = spec.decode(sample)
        compiled = spec.compiled()(sample)
        assert compiled.msg_type == reference.msg_type
        assert compiled.spec is reference.spec
        assert compiled._values == reference._values

    def test_mutations_rejected_identically(self, msg_type):
        spec = wire.REGISTRY[msg_type]
        compiled = spec.compiled()
        for label, malformed, _expected in mutations(spec):
            with pytest.raises(WireRejected) as ref_exc:
                spec.decode(malformed)
            with pytest.raises(WireRejected) as fast_exc:
                compiled(malformed)
            assert (fast_exc.value.msg_type, fast_exc.value.reason) \
                == (ref_exc.value.msg_type, ref_exc.value.reason), label


class TestCompilationCache:
    def test_compiled_closure_memoized_per_spec(self):
        spec = wire.REGISTRY["chat"]
        assert spec.compiled() is spec.compiled()

    def test_boundary_uses_reference_when_flag_off(self):
        """decode() must keep working (and agree) with the flag off."""
        from repro.wire import boundary

        spec = wire.REGISTRY["chat"]
        with perf.flags(compiled_decoders=False):
            view = boundary.decode(spec.sample_message())
        assert view._values == spec.decode(spec.sample_message())._values

    def test_optional_fields_absent_accepted(self):
        spec = wire.REGISTRY["query_req"]  # every field optional
        empty = Message("query_req")
        assert spec.compiled()(empty)._values == spec.decode(empty)._values
