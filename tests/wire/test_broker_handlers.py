"""Boundary coverage for every broker function, driven by the registry.

For each msg_type the broker handles, prove that a frame missing a
required element (or carrying a forged rider, for element-less frames)
is counted and dropped *before* the handler runs — the
``broker.fn.<msg_type>.calls`` counter must stay at zero.
"""

from __future__ import annotations

import pytest

from frames import build, fresh_registry
from repro import wire
from repro.jxta import Endpoint, Message
from tests.conftest import PlainWorld

#: Resolved once at collection; the broker registers its functions in
#: __init__, so a throwaway world names them all.
HANDLED = sorted(PlainWorld().broker.control.endpoint._handlers)


def test_every_broker_handler_has_a_spec(plain_world):
    assert set(plain_world.broker.control.endpoint._handlers) <= set(
        wire.REGISTRY)


@pytest.mark.parametrize("msg_type", HANDLED)
def test_malformed_frames_never_reach_the_handler(plain_world, msg_type):
    spec = wire.REGISTRY[msg_type]
    rogue = Endpoint(plain_world.net, "rogue:cov")
    probes = [(build(spec, skip=field.name), "missing_field")
              for field in spec.required_fields()]
    if not probes:  # element-less frame: probe with a forged rider
        rider = build(spec)
        rider.add_text("bogus_rider", "1")
        probes = [(rider, "unknown_field")]
    for malformed, reason in probes:
        with fresh_registry() as registry:
            assert rogue.send("broker:0", malformed)
            assert registry.count(
                f"wire.reject.{msg_type}.{reason}") == 1
            assert registry.count(f"broker.fn.{msg_type}.calls") == 0


@pytest.mark.parametrize("msg_type", HANDLED)
def test_unknown_variant_of_each_handler_rejected(plain_world, msg_type):
    """A lookalike type one underscore away never dispatches anywhere."""
    forged = Message(f"{msg_type}_x")
    with fresh_registry() as registry:
        rogue = Endpoint(plain_world.net, "rogue:cov")
        assert rogue.send("broker:0", forged)
        assert registry.count(
            f"wire.reject.{msg_type}_x.unknown_type") == 1
        assert registry.count(f"broker.fn.{msg_type}.calls") == 0
