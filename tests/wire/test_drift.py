"""Catalogue drift gates: docs, metric patterns, and source literals."""

from __future__ import annotations

import pathlib
import re

from repro import obs, wire
from repro.wire.__main__ import check_docs, embedded_section
from repro.wire.schema import REASONS

REPO = pathlib.Path(__file__).resolve().parents[2]


class TestProtocolsEmbedding:
    def test_embedded_catalogue_matches_registry(self):
        doc = (REPO / "PROTOCOLS.md").read_text(encoding="utf-8")
        assert embedded_section(doc) == wire.dump_catalogue()

    def test_check_docs_passes_on_the_repo_file(self):
        assert check_docs(str(REPO / "PROTOCOLS.md")) == 0

    def test_check_docs_flags_a_stale_section(self, tmp_path):
        stale = tmp_path / "stale.md"
        stale.write_text("<!-- BEGIN GENERATED FRAME CATALOGUE -->\n"
                         "old tables\n"
                         "<!-- END GENERATED FRAME CATALOGUE -->\n",
                         encoding="utf-8")
        assert check_docs(str(stale)) == 1

    def test_check_docs_flags_missing_markers(self, tmp_path):
        bare = tmp_path / "bare.md"
        bare.write_text("no markers here\n", encoding="utf-8")
        assert check_docs(str(bare)) == 2
        assert embedded_section("no markers") is None


class TestTaxonomyDocumented:
    def test_reject_patterns_are_registered_metric_patterns(self):
        assert "wire.reject.oversize" in obs.METRIC_PATTERNS
        assert "wire.reject.<msg_type>.<reason>" in obs.METRIC_PATTERNS

    def test_every_reason_described_in_observability_doc(self):
        doc = (REPO / "docs" / "OBSERVABILITY.md").read_text(
            encoding="utf-8")
        for reason in REASONS:
            assert f"`{reason}`" in doc, reason

    def test_sanitized_names_match_the_documented_pattern(self):
        for spec in wire.specs():
            name = (f"wire.reject."
                    f"{wire.sanitize_msg_type(spec.msg_type)}.unknown_field")
            assert obs.metric_pattern_for(
                name) == "wire.reject.<msg_type>.<reason>", spec.msg_type


class TestSourceLiterals:
    def test_every_constructed_frame_type_has_a_spec(self):
        """No code path (attack tools aside) mints an unregistered frame."""
        literal = re.compile(r'Message\(\s*"([a-z0-9_]+)"')
        for path in (REPO / "src" / "repro").rglob("*.py"):
            if "attacks" in path.parts:
                continue
            for msg_type in literal.findall(path.read_text(encoding="utf-8")):
                assert msg_type in wire.REGISTRY, f"{path.name}: {msg_type}"
