"""Shared helpers for the wire suite.

The valid-sample and mutation builders were promoted to
:mod:`repro.wire.fuzz` (the scenario engine's FrameStorm adversary
replays the same corpus); they are re-exported here so the suite keeps
one import point.  Only the registry plumbing is test-local.
"""

from __future__ import annotations

import contextlib

from repro import obs
from repro.wire.fuzz import add_field, build, mutations  # noqa: F401

__all__ = ["add_field", "build", "fresh_registry", "mutations",
           "wire_reject_counts"]


@contextlib.contextmanager
def fresh_registry():
    """Swap in an enabled metrics registry; restore on exit."""
    saved = obs.get_registry()
    registry = obs.set_registry(obs.Registry(enabled=True))
    try:
        yield registry
    finally:
        obs.set_registry(saved)


def wire_reject_counts(registry) -> dict[str, int]:
    """Every ``wire.reject.*`` counter the registry recorded."""
    return {name: registry.count(name)
            for name in registry.metric_names()
            if name.startswith("wire.reject.")}
