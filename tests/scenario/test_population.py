"""Population models: determinism, arrival shapes, actor lifecycle."""

from __future__ import annotations

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.scenario import (
    ActorPool,
    Cohort,
    DiurnalCurve,
    FlashCrowd,
    PoissonArrivals,
    Scenario,
    UniformRamp,
    zipf_group_sizes,
)

PROCESSES = [UniformRamp(), PoissonArrivals(), FlashCrowd(),
             DiurnalCurve(peaks=2)]


class TestArrivalProcesses:
    @pytest.mark.parametrize("process", PROCESSES,
                             ids=lambda p: type(p).__name__)
    def test_offsets_sorted_in_range_and_exact_count(self, process):
        offsets = process.offsets(50, 30.0, HmacDrbg(b"arrivals"))
        assert len(offsets) == 50
        assert offsets == sorted(offsets)
        assert all(0.0 <= t <= 30.0 for t in offsets)

    @pytest.mark.parametrize("process", PROCESSES,
                             ids=lambda p: type(p).__name__)
    def test_deterministic_from_seed(self, process):
        a = process.offsets(20, 10.0, HmacDrbg(b"same-seed"))
        b = process.offsets(20, 10.0, HmacDrbg(b"same-seed"))
        assert a == b

    def test_flash_crowd_concentrates(self):
        offsets = FlashCrowd(at=0.5, width=0.1).offsets(
            100, 100.0, HmacDrbg(b"flash"))
        assert all(44.0 <= t <= 56.0 for t in offsets)

    def test_uniform_ramp_is_evenly_paced(self):
        assert UniformRamp().offsets(4, 8.0, HmacDrbg(b"x")) == \
            [1.0, 3.0, 5.0, 7.0]


class TestZipfGroups:
    def test_sizes_heavy_tailed_and_bounded(self):
        sizes = zipf_group_sizes(10_000, 50, exponent=1.2, cap=300)
        assert len(sizes) == 50
        assert sizes == sorted(sizes, reverse=True)
        assert max(sizes) <= 300
        assert sum(sizes) <= 10_000

    def test_degenerate_inputs(self):
        assert zipf_group_sizes(0, 5) == []
        assert zipf_group_sizes(100, 0) == []


def build_world(n_brokers: int = 2):
    scn = Scenario(seed=b"pop-test")
    for i in range(n_brokers):
        scn.with_broker(f"broker:{i}", secure=False)
    return scn.build()


class TestActorPool:
    def make_pool(self, scn):
        return ActorPool(scn.network, scn.brokers.values(), scn.admin,
                         HmacDrbg(b"pool-test"))

    def test_provision_is_deterministic(self):
        cohort = Cohort("c", 30, groups=("g0", "g1"), wire_fraction=0.3)
        snapshots = []
        for _ in range(2):
            scn = build_world()
            pool = self.make_pool(scn)
            actors = pool.provision(cohort)
            snapshots.append([(a.username, a.peer_id, a.home, a.wire)
                              for a in actors])
        assert snapshots[0] == snapshots[1]

    def test_actors_spread_over_brokers(self):
        scn = build_world(n_brokers=3)
        pool = self.make_pool(scn)
        actors = pool.provision(Cohort("c", 30))
        homes = {a.home for a in actors}
        assert homes == set(scn.brokers)

    def test_bulk_join_installs_real_session_state(self):
        scn = build_world()
        pool = self.make_pool(scn)
        actor = pool.provision(Cohort("c", 4, groups=("lab",),
                                      group_cap=4))[0]
        assert pool.join(actor)
        broker = scn.brokers[actor.home]
        session = broker.connected[actor.peer_id]
        assert session.username == actor.username
        assert session.address == actor.address
        groups = scn.admin.database.groups_of(actor.username)
        for group in groups:
            assert actor.peer_id in broker.groups.get_or_none(group).members
        assert pool.leave(actor)
        assert actor.peer_id not in broker.connected

    def test_wire_join_runs_the_full_login_path(self):
        scn = build_world()
        pool = self.make_pool(scn)
        cohort = Cohort("w", 3, wire_fraction=1.1)  # every member wires in
        actors = pool.provision(cohort)
        assert all(a.wire for a in actors)
        broker = scn.brokers[actors[0].home]
        before = broker.metrics.count("fn.login")
        assert pool.join(actors[0])
        assert broker.metrics.count("fn.login") == before + 1
        assert actors[0].peer_id in broker.connected
        # wire logout resolves the session by source address
        assert pool.leave(actors[0])
        assert actors[0].peer_id not in broker.connected

    def test_join_failure_counted_not_raised(self):
        scn = build_world()
        pool = self.make_pool(scn)
        actor = pool.provision(Cohort("w", 1, wire_fraction=1.1))[0]
        actor.password = "wrong"
        assert not pool.join(actor)
        assert pool.stats["join_failures"] == 1
        assert not actor.joined
