"""Scenario engine: phase reports, adversaries, faults, convergence."""

from __future__ import annotations

import pytest

from repro import obs
from repro.crypto.drbg import HmacDrbg
from repro.errors import ReproError
from repro.scenario import (
    ActorPool,
    ChurnStorm,
    Cohort,
    EclipseAttack,
    FrameStorm,
    Phase,
    Scenario,
    ScenarioEngine,
    SybilFlood,
)
from repro.sim.faults import FaultPlan, FrameLoss
from tests.conftest import TEST_POLICY


@pytest.fixture()
def registry():
    saved = obs.get_registry()
    registry = obs.set_registry(obs.Registry(enabled=True))
    yield registry
    obs.set_registry(saved)


def secure_world(n_brokers: int = 2):
    builder = Scenario(seed=b"engine-test", policy=TEST_POLICY)
    builder.with_user("alice", "pw", groups={"lab"})
    builder.with_user("bob", "pw", groups={"lab"})
    for i in range(n_brokers):
        builder.with_broker(f"broker:{i}")
    builder.with_secure_peer("alice").with_secure_peer("bob")
    scn = builder.build(join=True)
    pool = ActorPool(scn.network, scn.brokers.values(), scn.admin,
                     HmacDrbg(b"engine-pool"))
    engine = ScenarioEngine(scn, pool=pool,
                            probe_pairs=[("alice", "bob", "lab")])
    return scn, pool, engine


class TestPhaseReports:
    def test_admission_phase_reports_population_and_goodput(self, registry):
        scn, pool, engine = secure_world()
        pool.provision(Cohort("c", 50, groups=("g0",)))
        report = engine.run([Phase("ramp", duration_s=10.0,
                                   admissions={"c": 50}, probes=5)])
        phase = report["phases"][0]
        assert phase["population"]["joins"] == 50
        assert phase["goodput"]["probe_attempts"] == 5
        assert phase["goodput"]["probe_ratio"] == 1.0
        assert phase["goodput"]["frames_sent"] > 0
        assert report["active_sessions"] == 52  # actors + two probe peers
        assert phase["convergence_s"] is None   # nothing to recover from

    def test_clock_advances_by_phase_duration(self, registry):
        scn, pool, engine = secure_world()
        t0 = scn.clock.now
        engine.run([Phase("idle", duration_s=7.5, probes=1)])
        assert scn.clock.now == pytest.approx(t0 + 7.5)

    def test_churn_joins_back_and_reports_leaves(self, registry):
        scn, pool, engine = secure_world()
        pool.provision(Cohort("c", 40))
        engine.run([Phase("ramp", duration_s=5.0, admissions={"c": 40},
                          probes=1)])
        report = engine.run([Phase("storm", duration_s=10.0,
                                   churn=ChurnStorm(count=10), probes=1)])
        phase = report["phases"][0]
        assert phase["population"]["leaves"] == 10
        assert phase["population"]["joins"] == 10
        assert report["active_sessions"] == 42

    def test_faults_counted_and_convergence_measured(self, registry):
        scn, pool, engine = secure_world()
        report = engine.run([Phase("lossy", duration_s=10.0,
                                   faults=FaultPlan(FrameLoss(rate=1.0)),
                                   probes=4)])
        phase = report["phases"][0]
        assert phase["rejects"]["faults"]["faults.loss.injected"] > 0
        assert phase["goodput"]["probe_ratio"] < 1.0
        # total loss lifted at phase end: recovery must complete
        assert phase["convergence_s"] is not None

    def test_unknown_cohort_raises(self, registry):
        scn, pool, engine = secure_world()
        with pytest.raises(ReproError, match="unknown cohort"):
            engine.run([Phase("x", admissions={"ghost": 5})])

    def test_admissions_without_pool_raise(self, registry):
        scn, _, _ = secure_world()
        engine = ScenarioEngine(scn)
        with pytest.raises(ReproError, match="no ActorPool"):
            engine.run([Phase("x", admissions={"c": 1})])


class TestSybilFlood:
    def test_secure_brokers_reject_every_identity(self, registry):
        scn, pool, engine = secure_world()
        sybil = SybilFlood(identities=12, per_step=4, malformed_every=4)
        report = engine.run([Phase("siege", duration_s=5.0,
                                   adversaries=(sybil,), ticks=3,
                                   probes=1)])
        summary = sybil.summary()
        assert summary["attempts"] == 12
        assert summary["accepted"] == 0
        rejects = report["phases"][0]["rejects"]["secure_login"]
        assert rejects["fn.secure_login.cbid_mismatch"] == 9
        assert rejects["fn.secure_login.malformed"] == 3

    def test_plain_brokers_accept_the_flood(self, registry):
        # The vulnerability the secure stack closes: one stolen
        # credential mints as many sessions as the attacker likes.
        builder = Scenario(seed=b"plain-sybil")
        builder.with_user("victim", "stolen", groups=set())
        builder.with_broker("broker:0", secure=False)
        scn = builder.build()
        engine = ScenarioEngine(scn)
        sybil = SybilFlood(identities=8, per_step=8,
                           stolen_user="victim", stolen_password="stolen")
        engine.run([Phase("siege", duration_s=2.0, adversaries=(sybil,),
                          ticks=1, probes=0)])
        summary = sybil.summary()
        assert summary["accepted"] == 8
        assert len(scn.broker().connected) == 8


class TestEclipse:
    def test_secure_federation_rejects_rogue_roster(self, registry):
        scn, pool, engine = secure_world(n_brokers=3)
        eclipse = EclipseAttack(rogues=4, per_step=3)
        report = engine.run([Phase("siege", duration_s=5.0,
                                   adversaries=(eclipse,), ticks=2,
                                   probes=1)])
        assert eclipse.summary()["link_ok"] == 0
        assert eclipse.captured_fraction(engine.ctx) == 0.0
        fed = report["phases"][0]["rejects"]["federation"]
        assert fed["fed.reject.unsigned"] == 6

    def test_plain_federation_is_captured(self, registry):
        builder = Scenario(seed=b"plain-eclipse")
        for i in range(2):
            builder.with_broker(f"broker:{i}", secure=False)
        scn = builder.build()
        engine = ScenarioEngine(scn)
        eclipse = EclipseAttack(rogues=4, per_step=4)
        engine.run([Phase("siege", duration_s=2.0, adversaries=(eclipse,),
                          ticks=1, probes=0)])
        assert eclipse.summary()["link_ok"] > 0
        assert eclipse.captured_fraction(engine.ctx) > 0.0


class TestFrameStorm:
    def test_storm_fully_absorbed_at_wire_boundary(self, registry):
        scn, pool, engine = secure_world()
        storm = FrameStorm(per_step=25)
        report = engine.run([Phase("siege", duration_s=5.0,
                                   adversaries=(storm,), ticks=2,
                                   probes=0)])
        summary = storm.summary()
        assert summary["frames_sent"] == 50
        assert summary["corpus_size"] > 0
        wire = report["phases"][0]["rejects"]["wire"]
        assert sum(wire.values()) == summary["frames_sent"]

    def test_corpus_restricted_to_handled_types(self, registry):
        scn, pool, engine = secure_world()
        storm = FrameStorm(msg_types=("login_req",))
        storm.attach(engine.ctx)
        assert all(label.startswith("login_req.")
                   for label, _, _ in storm._corpus)


class TestDeterminism:
    def run_once(self):
        saved = obs.get_registry()
        obs.set_registry(obs.Registry(enabled=True))
        try:
            scn, pool, engine = secure_world()
            pool.provision(Cohort("c", 30, groups=("g0",),
                                  wire_fraction=0.2))
            report = engine.run([
                Phase("ramp", duration_s=5.0, admissions={"c": 30},
                      probes=2),
                Phase("storm", duration_s=5.0, churn=ChurnStorm(count=5),
                      adversaries=(SybilFlood(identities=6, per_step=3),),
                      ticks=2, probes=2),
            ])
        finally:
            obs.set_registry(saved)
        return report

    def test_identical_runs_produce_identical_reports(self):
        assert self.run_once() == self.run_once()
