"""XMLdsig enveloped signatures: sign, verify, tamper, structure checks."""

import pytest

from repro.crypto import signing
from repro.crypto.drbg import HmacDrbg
from repro.dsig import (
    keyinfo_from_public_key,
    parse_signature,
    public_key_from_keyinfo,
    sign_element,
    verify_element,
)
from repro.dsig import templates as t
from repro.dsig.transforms import find_signature, strip_signatures
from repro.errors import (
    DigestMismatchError,
    InvalidSignatureError,
    SignatureFormatError,
)
from repro.xmllib import Element, parse, serialize


def _adv():
    e = Element("PipeAdvertisement")
    e.add("Id", text="urn:jxta:pipe-1")
    e.add("Type", text="JxtaUnicast")
    return e


class TestSignElement:
    def test_preserves_root_type(self, kp512):
        elem = sign_element(_adv(), kp512.private)
        assert elem.tag == "PipeAdvertisement"  # the ref [15] property

    def test_appends_exactly_one_signature(self, kp512):
        elem = sign_element(_adv(), kp512.private)
        assert len(elem.findall(t.SIGNATURE_TAG)) == 1

    def test_resigning_replaces(self, kp512, kp512_b):
        elem = sign_element(_adv(), kp512.private)
        sign_element(elem, kp512_b.private)
        assert len(elem.findall(t.SIGNATURE_TAG)) == 1
        verify_element(elem, kp512_b.public)

    def test_keyinfo_embedded(self, kp512):
        ki = keyinfo_from_public_key(kp512.public)
        elem = sign_element(_adv(), kp512.private, keyinfo=ki)
        result = verify_element(elem, kp512.public)
        assert public_key_from_keyinfo(result.keyinfo) == kp512.public

    def test_bad_keyinfo_tag_rejected(self, kp512):
        with pytest.raises(SignatureFormatError):
            sign_element(_adv(), kp512.private, keyinfo=Element("NotKeyInfo"))

    def test_unsupported_scheme_rejected(self, kp512):
        with pytest.raises(SignatureFormatError):
            sign_element(_adv(), kp512.private, sig_alg="md5-rsa")

    @pytest.mark.parametrize("alg", [t.SIG_ALG_PSS, t.SIG_ALG_V15])
    def test_both_schemes_verify(self, alg, kp512):
        elem = sign_element(_adv(), kp512.private, sig_alg=alg)
        assert verify_element(elem, kp512.public).sig_alg == alg


class TestVerifyAfterWire:
    def test_wire_roundtrip_still_verifies(self, kp512):
        elem = sign_element(_adv(), kp512.private, drbg=HmacDrbg(b"s"))
        received = parse(serialize(elem))
        verify_element(received, kp512.public)

    def test_pretty_printed_roundtrip_verifies(self, kp512):
        elem = sign_element(_adv(), kp512.private)
        received = parse(serialize(elem, indent=2))
        verify_element(received, kp512.public)


class TestTamperDetection:
    def test_changed_text_detected(self, kp512):
        elem = sign_element(_adv(), kp512.private)
        elem.find("Id").text = "urn:jxta:pipe-666"
        with pytest.raises(DigestMismatchError):
            verify_element(elem, kp512.public)

    def test_added_child_detected(self, kp512):
        elem = sign_element(_adv(), kp512.private)
        elem.add("Extra", text="injected")
        with pytest.raises(DigestMismatchError):
            verify_element(elem, kp512.public)

    def test_removed_child_detected(self, kp512):
        elem = sign_element(_adv(), kp512.private)
        elem.remove(elem.find("Type"))
        with pytest.raises(DigestMismatchError):
            verify_element(elem, kp512.public)

    def test_changed_attribute_detected(self, kp512):
        adv = _adv()
        adv.set("version", "1")
        elem = sign_element(adv, kp512.private)
        elem.set("version", "2")
        with pytest.raises(DigestMismatchError):
            verify_element(elem, kp512.public)

    def test_wrong_key_rejected(self, kp512, kp512_b):
        elem = sign_element(_adv(), kp512.private)
        with pytest.raises(InvalidSignatureError):
            verify_element(elem, kp512_b.public)

    def test_swapped_signature_value_rejected(self, kp512):
        a = sign_element(_adv(), kp512.private)
        other = _adv()
        other.find("Id").text = "urn:jxta:pipe-2"
        b = sign_element(other, kp512.private)
        # graft b's SignatureValue onto a
        sig_a = find_signature(a)
        sig_b = find_signature(b)
        sig_a.find(t.SIGNATURE_VALUE_TAG).text = sig_b.find(t.SIGNATURE_VALUE_TAG).text
        with pytest.raises(InvalidSignatureError):
            verify_element(a, kp512.public)

    def test_digest_substitution_rejected(self, kp512):
        # tamper content AND fix the digest: SignatureValue check must fail
        elem = sign_element(_adv(), kp512.private)
        elem.find("Id").text = "urn:jxta:pipe-666"
        from repro.crypto.sha2 import sha256
        from repro.utils.encoding import b64encode
        from repro.xmllib import canonicalize

        sig = find_signature(elem)
        ref = sig.find(t.SIGNED_INFO_TAG).find(t.REFERENCE_TAG)
        ref.find(t.DIGEST_VALUE_TAG).text = b64encode(
            sha256(canonicalize(strip_signatures(elem))))
        with pytest.raises(InvalidSignatureError):
            verify_element(elem, kp512.public)


class TestStructureChecks:
    def test_no_signature_rejected(self, kp512):
        with pytest.raises(SignatureFormatError):
            verify_element(_adv(), kp512.public)

    def test_two_signatures_rejected(self, kp512):
        elem = sign_element(_adv(), kp512.private)
        elem.append(find_signature(elem).deep_copy())
        with pytest.raises(SignatureFormatError):
            verify_element(elem, kp512.public)

    def test_unknown_c14n_rejected(self, kp512):
        elem = sign_element(_adv(), kp512.private)
        find_signature(elem).find(t.SIGNED_INFO_TAG).find(
            t.C14N_METHOD_TAG).set(t.ALG_ATTR, "w3c-c14n11")
        with pytest.raises(SignatureFormatError):
            verify_element(elem, kp512.public)

    def test_unknown_sig_alg_rejected(self, kp512):
        elem = sign_element(_adv(), kp512.private)
        find_signature(elem).find(t.SIGNED_INFO_TAG).find(
            t.SIGNATURE_METHOD_TAG).set(t.ALG_ATTR, "hmac-md5")
        with pytest.raises(SignatureFormatError):
            verify_element(elem, kp512.public)

    def test_nonempty_reference_uri_rejected(self, kp512):
        elem = sign_element(_adv(), kp512.private)
        find_signature(elem).find(t.SIGNED_INFO_TAG).find(
            t.REFERENCE_TAG).set(t.URI_ATTR, "#other")
        with pytest.raises(SignatureFormatError):
            verify_element(elem, kp512.public)

    def test_missing_transform_rejected(self, kp512):
        elem = sign_element(_adv(), kp512.private)
        ref = find_signature(elem).find(t.SIGNED_INFO_TAG).find(t.REFERENCE_TAG)
        ref.remove(ref.find(t.TRANSFORMS_TAG))
        with pytest.raises(SignatureFormatError):
            verify_element(elem, kp512.public)


class TestStripSignatures:
    def test_strips_only_toplevel(self, kp512):
        elem = sign_element(_adv(), kp512.private)
        nested_holder = Element("Wrapper")
        nested_holder.append(elem.deep_copy())
        stripped = strip_signatures(nested_holder)
        # the nested document's signature belongs to the content
        inner = stripped.find("PipeAdvertisement")
        assert inner.find(t.SIGNATURE_TAG) is not None

    def test_original_untouched(self, kp512):
        elem = sign_element(_adv(), kp512.private)
        strip_signatures(elem)
        assert elem.find(t.SIGNATURE_TAG) is not None


class TestKeyInfo:
    def test_roundtrip(self, kp512):
        ki = keyinfo_from_public_key(kp512.public)
        assert public_key_from_keyinfo(ki) == kp512.public

    def test_wrong_tag_rejected(self, kp512):
        with pytest.raises(SignatureFormatError):
            public_key_from_keyinfo(Element("Nope"))

    def test_empty_keyinfo_rejected(self):
        with pytest.raises(SignatureFormatError):
            public_key_from_keyinfo(Element(t.KEY_INFO_TAG))


class TestParseSignature:
    def test_returns_structure_without_key(self, kp512):
        from repro.xmllib import canonicalize

        elem = sign_element(_adv(), kp512.private)
        parsed = parse_signature(elem)
        assert parsed.sig_alg == t.SIG_ALG_PSS
        assert signing.is_valid(kp512.public, canonicalize(parsed.signed_info),
                                parsed.signature_value, scheme=parsed.sig_alg)
