"""E-HOTPATH harness: stage timings, the A/B probe, gates and tables."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import profile


def _tiny_document(speedup: float = 2.5, all_passed: bool = True) -> dict:
    """A synthetic BENCH_HOTPATH document for gate/table unit tests."""
    return {
        "experiment": "E-HOTPATH",
        "speedup_target": profile.HOTPATH_SPEEDUP_TARGET,
        "steady_state": {
            "legacy": {"msgs_per_sec": 100.0, "ms_per_msg": 10.0,
                       "messages": 5, "delivered": 5},
            "optimized": {"msgs_per_sec": 100.0 * speedup,
                          "ms_per_msg": 10.0 / speedup,
                          "messages": 5, "delivered": 5},
            "speedup": speedup,
        },
        "layers": [
            {"layer": "plain", "msgs_per_sec": 1000.0, "ms_per_msg": 1.0,
             "x_vs_plain": 1.0, "messages": 5, "delivered": 5},
            {"layer": "+secure resumed", "msgs_per_sec": 200.0,
             "ms_per_msg": 5.0, "x_vs_plain": 5.0,
             "messages": 5, "delivered": 5},
        ],
        "checks": {"all_passed": all_passed,
                   "speedup_at_least_2x": all_passed},
    }


class TestStages:
    def test_stage_report_shape(self):
        stages = profile.stage_report(repeats=40)
        names = [row["stage"] for row in stages]
        assert len(names) == len(set(names))
        for row in stages:
            assert row["flag"] in (
                "wire_cache", "compiled_decoders", "ring_memo",
                "interned_metrics", "chacha_vector")
            assert row["legacy_us"] > 0
            assert row["optimized_us"] > 0
            assert row["speedup"] > 0

    def test_stage_report_covers_every_layer(self):
        stages = {row["stage"] for row in profile.stage_report(repeats=20)}
        for fragment in ("codec", "wire boundary", "ring", "obs counter",
                         "chacha20", "resume", "envelope"):
            assert any(fragment in stage for stage in stages), fragment


class TestSteadyState:
    def test_ab_probe_structure_and_delivery(self):
        steady = profile.steady_state_ab(messages=6)
        for mode in ("legacy", "optimized"):
            stats = steady[mode]
            assert stats["delivered"] == stats["messages"] == 6
            assert stats["msgs_per_sec"] > 0
            assert stats["resumed_frames"] >= 6
        assert steady["speedup"] > 0


class TestLayerLadder:
    def test_ladder_rows_and_normalization(self):
        rows = profile.layer_ladder(messages=4)
        assert [row["layer"] for row in rows] == [
            "plain", "+wire", "+obs", "+secure (stateless)",
            "+secure resumed"]
        assert rows[0]["x_vs_plain"] == pytest.approx(1.0)
        for row in rows:
            assert row["delivered"] == row["messages"] == 4
        # security dominates the ladder: secure rows cost multiples of plain
        assert rows[3]["x_vs_plain"] > 2.0


class TestRegressionGate:
    def test_equal_runs_pass(self):
        doc = _tiny_document()
        assert profile.check_regression(doc, doc) == []

    def test_regressed_speedup_fails(self):
        baseline = _tiny_document(speedup=2.5)
        fresh = _tiny_document(speedup=2.5 * 0.7)  # 30% drop > 20% tolerance
        problems = profile.check_regression(fresh, baseline)
        assert any("regressed" in p for p in problems)

    def test_drop_within_tolerance_passes(self):
        baseline = _tiny_document(speedup=2.5)
        fresh = _tiny_document(speedup=2.5 * 0.85)  # 15% drop
        assert profile.check_regression(fresh, baseline) == []

    def test_failed_checks_fail_the_gate(self):
        doc = _tiny_document(all_passed=False)
        problems = profile.check_regression(doc, doc)
        assert any("failed its own checks" in p for p in problems)

    def test_gate_cli(self, tmp_path):
        fresh = tmp_path / "fresh.json"
        base = tmp_path / "base.json"
        fresh.write_text(json.dumps(_tiny_document(2.4)))
        base.write_text(json.dumps(_tiny_document(2.5)))
        assert profile.gate(str(fresh), str(base)) == 0
        fresh.write_text(json.dumps(_tiny_document(1.5)))
        assert profile.gate(str(fresh), str(base)) == 1
        assert profile.gate(str(tmp_path / "missing.json"), str(base)) == 2


class TestLayerTableDocs:
    def test_render_round_trips_through_markers(self):
        doc = _tiny_document()
        table = profile.render_layer_table(doc)
        page = (f"# perf\n\n{profile.BEGIN_MARK}\n{table}{profile.END_MARK}\n")
        assert profile.embedded_section(page) == table

    def test_check_docs_detects_drift(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_tiny_document()))
        doc = tmp_path / "PERF.md"
        table = profile.render_layer_table(_tiny_document())
        doc.write_text(
            f"# perf\n\n{profile.BEGIN_MARK}\n{table}{profile.END_MARK}\n")
        assert profile.check_docs(str(doc), str(baseline)) == 0
        # drift the baseline -> the embedded table no longer matches
        baseline.write_text(json.dumps(_tiny_document(speedup=3.0)))
        assert profile.check_docs(str(doc), str(baseline)) == 1
        # no marker section at all
        doc.write_text("# perf, no markers\n")
        assert profile.check_docs(str(doc), str(baseline)) == 2

    def test_update_docs_rewrites_section(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_tiny_document(speedup=3.0)))
        doc = tmp_path / "PERF.md"
        doc.write_text(f"intro\n{profile.BEGIN_MARK}\nstale\n"
                       f"{profile.END_MARK}\noutro\n")
        assert profile.update_docs(str(doc), str(baseline)) == 0
        assert profile.check_docs(str(doc), str(baseline)) == 0
        text = doc.read_text()
        assert text.startswith("intro\n") and text.endswith("outro\n")


class TestCommittedArtifacts:
    """The repo's own baseline and docs must satisfy the gates."""

    REPO = Path(__file__).resolve().parents[2]

    def test_committed_baseline_passes_its_checks(self):
        baseline = json.loads(
            (self.REPO / profile.BASELINE_PATH).read_text(encoding="utf-8"))
        assert baseline["checks"]["all_passed"]
        assert baseline["steady_state"]["speedup"] \
            >= profile.HOTPATH_SPEEDUP_TARGET

    def test_performance_doc_matches_committed_baseline(self):
        assert profile.check_docs(
            str(self.REPO / profile.PERFORMANCE_DOC),
            str(self.REPO / profile.BASELINE_PATH)) == 0
