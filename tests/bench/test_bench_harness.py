"""The benchmark harness itself: timing maths, fixtures, small experiments.

These run the real experiments at miniature scale so they stay fast; the
full-scale runs live in ``benchmarks/``.
"""

import pytest

from repro.bench import fixtures
from repro.bench.timing import OpTiming, mean_total, overhead_pct, timed_call
from repro.core.policy import SecurityPolicy
from repro.crypto import envelope
from repro.sim import SimNetwork, VirtualClock

FAST_POLICY = SecurityPolicy(rsa_bits=512,
                             envelope_wrap=envelope.WRAP_V15).validate()


class TestTimingMath:
    def test_total_combines_cpu_and_network(self):
        t = OpTiming(wall_cpu_s=0.010, network_s=0.002, cpu_scale=2.0)
        assert t.total_s == pytest.approx(0.022)

    def test_overhead_pct(self):
        assert overhead_pct(1.8176, 1.0) == pytest.approx(81.76)
        assert overhead_pct(1.0, 1.0) == pytest.approx(0.0)

    def test_overhead_requires_positive_baseline(self):
        with pytest.raises(ValueError):
            overhead_pct(1.0, 0.0)

    def test_mean_total(self):
        ts = [OpTiming(0.001, 0.001, 1.0), OpTiming(0.003, 0.001, 1.0)]
        assert mean_total(ts) == pytest.approx(0.003)
        assert mean_total([]) == 0.0

    def test_timed_call_splits_costs(self):
        net = SimNetwork(clock=VirtualClock())
        net.register("dst", lambda f: None)
        timing = timed_call(net, lambda: net.send("src", "dst", b"x" * 1000))
        assert timing.network_s > 0
        assert timing.wall_cpu_s >= 0


class TestFixtures:
    def test_cached_keypair_is_cached(self):
        a = fixtures.cached_keypair(512, "t")
        b = fixtures.cached_keypair(512, "t")
        assert a is b

    def test_plain_world_builds(self):
        net, broker, clients = fixtures.build_plain_world(n_clients=2)
        fixtures.join_plain(clients)
        assert all(c.username for c in clients)
        assert len(broker.connected) == 2

    def test_secure_world_joined(self):
        net, admin, broker, clients = fixtures.build_secure_world(
            n_clients=2, policy=FAST_POLICY, joined=True)
        assert all(c.username for c in clients)
        assert all(c.keystore.chain for c in clients)


class TestMiniExperiments:
    def test_join_overhead_positive(self):
        from repro.bench.experiments import join_overhead

        result = join_overhead(policy=FAST_POLICY, repeats=1)
        assert result.secure_s > result.plain_s > 0
        assert result.overhead_pct > 0

    def test_msg_curve_shape(self):
        from repro.bench.experiments import msg_overhead_curve

        curve = msg_overhead_curve(sizes=(100, 100_000), policy=FAST_POLICY,
                                   repeats=1)
        assert len(curve.points) == 2
        # Figure 2's qualitative shape: big messages cost relatively less
        assert curve.points[-1].overhead_pct < curve.points[0].overhead_pct

    def test_group_scaling_grows_with_members(self):
        from repro.bench.experiments import group_scaling

        points = group_scaling(group_sizes=(2, 4), policy=FAST_POLICY)
        assert points[1].secure_s > points[0].secure_s

    def test_baseline_comparison_runs(self):
        from repro.bench.experiments import baseline_comparison

        points = baseline_comparison(message_counts=(1, 5),
                                     policy=FAST_POLICY)
        assert all(p.stateless_s > 0 and p.tls_s > 0 and p.cbjx_s > 0
                   for p in points)
        # stateless grows linearly; TLS amortizes its handshake
        stateless_growth = points[1].stateless_s / points[0].stateless_s
        tls_growth = points[1].tls_s / points[0].tls_s
        assert stateless_growth > tls_growth


class TestReportFormatting:
    def test_join_report_mentions_paper_number(self):
        from repro.bench.experiments import JoinOverheadResult
        from repro.bench.report import format_join_overhead

        text = format_join_overhead(JoinOverheadResult(
            plain_s=0.01, secure_s=0.018176, overhead_pct=81.76))
        assert "81.76" in text

    def test_msg_report_flags_shape(self):
        from repro.bench.experiments import MsgOverheadCurve, MsgOverheadPoint
        from repro.bench.report import format_msg_overhead

        curve = MsgOverheadCurve(points=[
            MsgOverheadPoint(100, 0.001, 0.01, 900.0),
            MsgOverheadPoint(10_000, 0.01, 0.03, 200.0),
        ])
        assert "matches Figure 2" in format_msg_overhead(curve)

    def test_baselines_report_names_winner(self):
        from repro.bench.experiments import BaselineComparisonPoint
        from repro.bench.report import format_baselines

        text = format_baselines([BaselineComparisonPoint(5, 0.05, 0.03, 0.01)],
                                size_bytes=100)
        assert "cbjx" in text
