"""Unit tests for the network-driven TLS/CBJX baseline drivers."""

import pytest

from repro.bench.baselines import CbjxEchoPair, TlsClientDriver, TlsEchoServer
from repro.crypto.drbg import HmacDrbg
from repro.errors import TransportError
from repro.sim import SimNetwork, VirtualClock
from tests.conftest import cached_keypair


@pytest.fixture()
def net():
    return SimNetwork(clock=VirtualClock())


class TestTlsDriver:
    def test_handshake_and_echo(self, net, kp1024):
        TlsEchoServer(net, "srv", kp1024, HmacDrbg(b"s"))
        driver = TlsClientDriver(net, "cli", "srv", HmacDrbg(b"c"))
        driver.handshake()
        assert driver.echo(b"payload") == b"payload"
        assert driver.echo(b"second") == b"second"  # sequence advances

    def test_echo_before_handshake_rejected(self, net, kp1024):
        TlsEchoServer(net, "srv", kp1024, HmacDrbg(b"s"))
        driver = TlsClientDriver(net, "cli", "srv", HmacDrbg(b"c"))
        with pytest.raises(TransportError):
            driver.echo(b"too early")

    def test_handshake_charges_network_time(self, net, kp1024):
        TlsEchoServer(net, "srv", kp1024, HmacDrbg(b"s"))
        driver = TlsClientDriver(net, "cli", "srv", HmacDrbg(b"c"))
        net0 = net.clock.network_time
        driver.handshake()
        # 2 round trips = 4 one-way transits minimum
        assert net.clock.network_time - net0 >= 4 * net.default_link.latency_s

    def test_multiple_clients_one_server(self, net, kp1024):
        TlsEchoServer(net, "srv", kp1024, HmacDrbg(b"s"))
        a = TlsClientDriver(net, "cli-a", "srv", HmacDrbg(b"a"))
        b = TlsClientDriver(net, "cli-b", "srv", HmacDrbg(b"b"))
        a.handshake()
        b.handshake()
        assert a.echo(b"from-a") == b"from-a"
        assert b.echo(b"from-b") == b"from-b"


class TestCbjxPair:
    def test_roundtrip(self, net, kp512, kp512_b):
        pair = CbjxEchoPair(net, "a", "b", kp512, kp512_b, HmacDrbg(b"p"))
        assert pair.send_a_to_b(b"hello")
        assert pair.received_b == [b"hello"]

    def test_multiple_messages(self, net, kp512, kp512_b):
        pair = CbjxEchoPair(net, "a", "b", kp512, kp512_b, HmacDrbg(b"p"))
        for i in range(5):
            pair.send_a_to_b(b"msg%d" % i)
        assert len(pair.received_b) == 5
