"""Terminal Figure-2 rendering."""

from repro.bench.experiments import MsgOverheadCurve, MsgOverheadPoint
from repro.bench.figures import render_figure2


def _curve(values):
    return MsgOverheadCurve(points=[
        MsgOverheadPoint(size_bytes=10 ** (i + 2), plain_s=0.001,
                         secure_s=0.001 * (1 + v / 100), overhead_pct=v)
        for i, v in enumerate(values)
    ])


class TestRenderFigure2:
    def test_contains_labels_and_bars(self):
        out = render_figure2(_curve([900.0, 400.0, 100.0]))
        assert "100B" in out and "1kB" in out and "10kB" in out
        assert "█" in out
        assert "secureMsgPeer overhead" in out

    def test_tallest_bar_is_first_for_falling_curve(self):
        out = render_figure2(_curve([900.0, 400.0, 100.0]))
        first_row = out.splitlines()[1]  # top data row
        # only the first column reaches the top
        assert "█" in first_row
        assert first_row.rstrip().endswith("███")
        assert first_row.count("███") == 1

    def test_empty_curve(self):
        assert "no data" in render_figure2(MsgOverheadCurve())

    def test_non_positive_values(self):
        assert "non-positive" in render_figure2(_curve([0.0, 0.0]))

    def test_size_labels(self):
        from repro.bench.figures import _format_size

        assert _format_size(100) == "100B"
        assert _format_size(1_000) == "1kB"
        assert _format_size(1_000_000) == "1MB"
