"""E-SCALE harness: quick run sanity, the regression gate's failure modes."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.scale import (
    check_scale_regression,
    format_scale,
    gate,
    scale_report,
    write_bench_scale,
)

PHASE_NAMES = ["ramp", "flash-crowd", "brownout", "siege", "recovery"]


@pytest.fixture(scope="module")
def quick_doc():
    return scale_report(quick=True)


class TestQuickRun:
    def test_all_acceptance_checks_pass(self, quick_doc):
        failing = [k for k, v in quick_doc["checks"].items() if not v]
        assert failing == []

    def test_canonical_phase_mix(self, quick_doc):
        assert [p["name"] for p in quick_doc["phases"]] == PHASE_NAMES

    def test_population_fully_admitted(self, quick_doc):
        assert quick_doc["population"] == 2_000
        # the whole population plus the two probe peers stays connected
        assert quick_doc["active_sessions"] == 2_002

    def test_siege_taxonomy_has_all_three_layers(self, quick_doc):
        siege = next(p for p in quick_doc["phases"] if p["name"] == "siege")
        assert sum(siege["rejects"]["secure_login"].values()) > 0
        assert sum(siege["rejects"]["federation"].values()) > 0
        assert sum(siege["rejects"]["wire"].values()) > 0

    def test_format_renders_every_phase(self, quick_doc):
        text = format_scale(quick_doc)
        for name in PHASE_NAMES:
            assert name in text
        assert "checks: pass" in text

    def test_document_is_json_serialisable(self, quick_doc, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text(json.dumps(quick_doc), encoding="utf-8")
        assert json.loads(path.read_text(encoding="utf-8")) == quick_doc


def small_doc():
    def phase(name, frames=100, rejects=None):
        return {
            "name": name,
            "goodput": {"probe_ratio": 1.0, "probe_attempts": 10,
                        "frames_sent": frames},
            "population": {"joins": 0, "leaves": 0},
            "rejects": rejects or {"wire": {}, "federation": {},
                                   "login": {}, "secure_login": {},
                                   "faults": {}},
            "convergence_s": None,
            "adversaries": {},
        }

    return {
        "experiment": "E-SCALE",
        "brokers": 8,
        "population": 2_000,
        "phases": [
            phase("ramp", frames=1_000),
            phase("siege", frames=500,
                  rejects={"wire": {"wire.reject.x.bad": 40},
                           "federation": {"fed.reject.unsigned": 10},
                           "login": {}, "secure_login": {}, "faults": {}}),
        ],
        "checks": {"all_passed": True},
    }


class TestRegressionGate:
    def test_identical_docs_pass(self):
        doc = small_doc()
        assert check_scale_regression(doc, copy.deepcopy(doc)) == []

    def test_fresh_self_check_failure_fails(self):
        base = small_doc()
        fresh = copy.deepcopy(base)
        fresh["checks"] = {"all_passed": False, "sybil_none_accepted": False}
        problems = check_scale_regression(fresh, base)
        assert any("acceptance checks" in p for p in problems)
        assert any("sybil_none_accepted" in p for p in problems)

    def test_frame_growth_past_tolerance_fails(self):
        base = small_doc()
        fresh = copy.deepcopy(base)
        fresh["phases"][0]["goodput"]["frames_sent"] = 1_300
        problems = check_scale_regression(fresh, base)
        assert any("frames_sent regressed" in p for p in problems)

    def test_frame_growth_within_tolerance_passes(self):
        base = small_doc()
        fresh = copy.deepcopy(base)
        fresh["phases"][0]["goodput"]["frames_sent"] = 1_100
        assert check_scale_regression(fresh, base) == []

    def test_siege_reject_shrink_fails(self):
        base = small_doc()
        fresh = copy.deepcopy(base)
        fresh["phases"][1]["rejects"]["wire"] = {"wire.reject.x.bad": 5}
        problems = check_scale_regression(fresh, base)
        assert any("taxonomy shrank" in p for p in problems)

    def test_missing_phase_fails(self):
        base = small_doc()
        fresh = copy.deepcopy(base)
        fresh["phases"] = fresh["phases"][:1]
        problems = check_scale_regression(fresh, base)
        assert any("missing from fresh run" in p for p in problems)

    def test_shape_change_fails(self):
        base = small_doc()
        fresh = copy.deepcopy(base)
        fresh["brokers"] = 4
        fresh["population"] = 1_000
        problems = check_scale_regression(fresh, base)
        assert any("brokers changed" in p for p in problems)
        assert any("population changed" in p for p in problems)

    def test_gate_cli_roundtrip(self, tmp_path):
        doc = small_doc()
        fresh = write_bench_scale(doc, tmp_path / "fresh.json")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(doc), encoding="utf-8")
        assert gate(str(fresh), str(baseline)) == 0
        assert gate(str(tmp_path / "nope.json"), str(baseline)) == 2


class TestCommittedBaseline:
    def test_quick_run_passes_the_committed_gate(self, quick_doc, tmp_path):
        baseline = json.loads(
            open("benchmarks/baselines/BENCH_SCALE.json",
                 encoding="utf-8").read())
        assert check_scale_regression(quick_doc, baseline) == []
