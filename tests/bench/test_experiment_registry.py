"""README quickstart vs the ``--experiment`` registry (drift gate).

The install-and-run block in ``README.md`` documents one line per named
experiment.  This suite keeps that list exactly in sync with
:data:`repro.bench.__main__.EXPERIMENTS` — the same
generated-docs-must-match-the-code idea as the ``PROTOCOLS.md`` frame
catalogue check.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.bench.__main__ import EXPERIMENTS

README = Path(__file__).resolve().parents[2] / "README.md"


def readme_experiments() -> set[str]:
    text = README.read_text(encoding="utf-8")
    return set(re.findall(
        r"python -m repro\.bench --experiment (\w+)", text))


def test_readme_lists_every_experiment():
    assert readme_experiments() == set(EXPERIMENTS)


def test_every_experiment_writes_its_bench_json():
    """Each README experiment line names its BENCH_<NAME>.json artifact."""
    text = README.read_text(encoding="utf-8")
    for name in EXPERIMENTS:
        assert f"BENCH_{name.upper()}.json" in text, name


def test_unknown_experiment_exits_2(capsys):
    from repro.bench.__main__ import main

    assert main(["--experiment", "nonsense"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    for name in EXPERIMENTS:
        assert name in err  # the error lists every valid name
