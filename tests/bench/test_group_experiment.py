"""E-GROUP harness: cell sanity, the regression gate's failure modes."""

from __future__ import annotations

import copy
import json

from repro.bench.group import (
    _cast_cell,
    check_group_regression,
    gate,
    write_bench_group,
)


def small_doc():
    cell = _cast_cell(4, 1, messages=2)
    data = {
        "experiment": "E-GROUP",
        "size_sweep": [dict(cell.__dict__)],
        "broker_sweep": [dict(cell.__dict__)],
        "checks": {"all_passed": True},
    }
    return data


class TestCastCell:
    def test_small_cell_is_o1(self):
        cell = _cast_cell(4, 1, messages=2)
        assert cell.sender_frames_per_cast == 1.0
        assert cell.epoch_seals_per_cast == 1.0
        assert cell.delivered_per_cast == 3.0
        assert cell.relayed_per_cast == 0.0

    def test_relay_counts_ring_minus_one(self):
        cell = _cast_cell(4, 2, messages=2)
        assert cell.relayed_per_cast == 1.0
        assert cell.delivered_per_cast == 3.0


class TestRegressionGate:
    def test_identical_docs_pass(self):
        doc = small_doc()
        assert check_group_regression(doc, copy.deepcopy(doc)) == []

    def test_frame_growth_fails(self):
        base = small_doc()
        fresh = copy.deepcopy(base)
        fresh["size_sweep"][0]["sender_frames_per_cast"] = 2.0
        problems = check_group_regression(fresh, base)
        assert any("sender_frames_per_cast" in p for p in problems)

    def test_delivery_count_is_exact(self):
        base = small_doc()
        fresh = copy.deepcopy(base)
        fresh["size_sweep"][0]["delivered_per_cast"] -= 1.0
        problems = check_group_regression(fresh, base)
        assert any("delivered_per_cast" in p for p in problems)

    def test_missing_cell_fails(self):
        base = small_doc()
        fresh = copy.deepcopy(base)
        fresh["size_sweep"] = []
        problems = check_group_regression(fresh, base)
        assert any("missing" in p for p in problems)

    def test_fresh_self_check_failure_fails(self):
        base = small_doc()
        fresh = copy.deepcopy(base)
        fresh["checks"] = {"all_passed": False, "o1_rsa_flat": False}
        problems = check_group_regression(fresh, base)
        assert any("its own checks" in p for p in problems)

    def test_gate_cli_roundtrip(self, tmp_path):
        doc = small_doc()
        fresh = write_bench_group(doc, tmp_path / "fresh.json")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(doc), encoding="utf-8")
        assert gate(str(fresh), str(baseline)) == 0
        assert gate(str(tmp_path / "nope.json"), str(baseline)) == 2
