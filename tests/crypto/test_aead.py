"""ChaCha20-Poly1305 AEAD: RFC vector, oracle, tamper rejection."""

import os

import pytest
from cryptography.hazmat.primitives.ciphers.aead import ChaCha20Poly1305
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import aead
from repro.errors import InvalidTagError

KEY = bytes(range(0x80, 0xA0))
NONCE = bytes.fromhex("070000004041424344454647")


class TestRfc8439Vector:
    PLAINTEXT = (b"Ladies and Gentlemen of the class of '99: If I could offer "
                 b"you only one tip for the future, sunscreen would be it.")
    AAD = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")

    def test_seal_matches_rfc(self):
        sealed = aead.seal(KEY, NONCE, self.PLAINTEXT, self.AAD)
        assert sealed[-16:] == bytes.fromhex("1ae10b594f09e26a7e902ecbd0600691")

    def test_open_roundtrip(self):
        sealed = aead.seal(KEY, NONCE, self.PLAINTEXT, self.AAD)
        assert aead.open_(KEY, NONCE, sealed, self.AAD) == self.PLAINTEXT


class TestOracle:
    @settings(max_examples=15, deadline=None)
    @given(st.binary(max_size=500), st.binary(max_size=50))
    def test_against_cryptography(self, plaintext, aad):
        key = os.urandom(32)
        nonce = os.urandom(12)
        theirs = ChaCha20Poly1305(key).encrypt(nonce, plaintext, aad)
        ours = aead.seal(key, nonce, plaintext, aad)
        assert ours == theirs
        assert aead.open_(key, nonce, theirs, aad) == plaintext


class TestTamperRejection:
    def _sealed(self):
        return aead.seal(KEY, NONCE, b"attack at dawn", b"header")

    def test_flipped_ciphertext_bit(self):
        sealed = bytearray(self._sealed())
        sealed[0] ^= 1
        with pytest.raises(InvalidTagError):
            aead.open_(KEY, NONCE, bytes(sealed), b"header")

    def test_flipped_tag_bit(self):
        sealed = bytearray(self._sealed())
        sealed[-1] ^= 1
        with pytest.raises(InvalidTagError):
            aead.open_(KEY, NONCE, bytes(sealed), b"header")

    def test_wrong_aad(self):
        with pytest.raises(InvalidTagError):
            aead.open_(KEY, NONCE, self._sealed(), b"other-header")

    def test_wrong_key(self):
        with pytest.raises(InvalidTagError):
            aead.open_(bytes(32), NONCE, self._sealed(), b"header")

    def test_wrong_nonce(self):
        with pytest.raises(InvalidTagError):
            aead.open_(KEY, bytes(12), self._sealed(), b"header")

    def test_truncated_rejected(self):
        with pytest.raises(InvalidTagError):
            aead.open_(KEY, NONCE, b"\x01" * 10, b"")


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=300), st.binary(max_size=30))
    def test_roundtrip(self, plaintext, aad):
        sealed = aead.seal(KEY, NONCE, plaintext, aad)
        assert len(sealed) == len(plaintext) + aead.TAG_SIZE
        assert aead.open_(KEY, NONCE, sealed, aad) == plaintext

    def test_empty_plaintext(self):
        sealed = aead.seal(KEY, NONCE, b"", b"aad")
        assert len(sealed) == aead.TAG_SIZE
        assert aead.open_(KEY, NONCE, sealed, b"aad") == b""
