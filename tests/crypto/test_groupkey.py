"""Epoch group keys: derivation scoping, seal/open, ring taxonomy."""

from __future__ import annotations

import pytest

from repro import obs
from repro.crypto import groupkey
from repro.crypto.drbg import HmacDrbg
from repro.errors import DecryptionError, StaleEpochError, UnknownEpochError

SECRET = b"\x01" * groupkey.EPOCH_SECRET_LEN
OTHER = b"\x02" * groupkey.EPOCH_SECRET_LEN


@pytest.fixture()
def drbg():
    return HmacDrbg(b"groupkey-tests")


class TestDerivation:
    def test_scope_binds_group_and_epoch(self):
        base = groupkey.derive_epoch_key("chess", 1, SECRET)
        assert groupkey.derive_epoch_key("chess", 1, SECRET) == base
        assert groupkey.derive_epoch_key("chess", 2, SECRET).key != base.key
        assert groupkey.derive_epoch_key("go", 1, SECRET).key != base.key
        assert base.key != base.mac_key

    def test_wrong_secret_length_rejected(self):
        with pytest.raises(ValueError):
            groupkey.derive_epoch_key("chess", 1, b"short")

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            groupkey.derive_epoch_key("chess", 1, SECRET, suite="rot13")


class TestSealOpen:
    @pytest.mark.parametrize("suite", ["chacha20poly1305", "aes128-cbc",
                                       "aes256-cbc"])
    def test_roundtrip(self, drbg, suite):
        if suite not in groupkey.SUITES:
            pytest.skip(f"suite {suite} not built in")
        ek = groupkey.derive_epoch_key("chess", 3, SECRET, suite=suite)
        env = groupkey.seal_epoch(ek, b"knight to f3", drbg)
        assert env["group"] == "chess" and env["epoch"] == 3
        assert groupkey.open_epoch(ek, env) == b"knight to f3"

    def test_nonces_are_random_per_frame(self, drbg):
        ek = groupkey.derive_epoch_key("chess", 1, SECRET)
        envs = [groupkey.seal_epoch(ek, b"same text", drbg) for _ in range(4)]
        assert len({e["nonce"] for e in envs}) == 4
        assert len({e["body"] for e in envs}) == 4

    def test_tampered_body_fails_auth(self, drbg):
        ek = groupkey.derive_epoch_key("chess", 1, SECRET)
        env = groupkey.seal_epoch(ek, b"payload", drbg)
        env["body"] = env["body"][:-4] + "AAA="
        with pytest.raises(DecryptionError):
            groupkey.open_epoch(ek, env)

    def test_cross_epoch_key_cannot_open(self, drbg):
        sealed_under = groupkey.derive_epoch_key("chess", 1, SECRET)
        env = groupkey.seal_epoch(sealed_under, b"payload", drbg)
        env["epoch"] = 2  # lie about the epoch
        other = groupkey.derive_epoch_key("chess", 2, SECRET)
        with pytest.raises(DecryptionError):
            groupkey.open_epoch(other, env)

    def test_malformed_envelope(self):
        ek = groupkey.derive_epoch_key("chess", 1, SECRET)
        with pytest.raises(DecryptionError):
            groupkey.open_epoch(ek, {"suite": ek.suite})


class TestRing:
    def test_install_advances_epoch(self):
        ring = groupkey.GroupKeyRing("chess")
        assert ring.epoch == 0
        ring.install(1, SECRET)
        ring.install(2, OTHER)
        assert ring.epoch == 2
        assert ring.get(1).epoch == 1

    def test_backfill_keeps_numeric_order(self):
        ring = groupkey.GroupKeyRing("chess")
        ring.install(3, SECRET)
        ring.install(1, OTHER)
        assert ring.epoch == 3

    def test_history_trims_to_stale(self):
        ring = groupkey.GroupKeyRing("chess", history=2)
        for epoch in (1, 2, 3):
            ring.install(epoch, SECRET)
        assert len(ring) == 2
        with pytest.raises(StaleEpochError):
            ring.get(1)

    def test_newer_epoch_is_unknown_not_stale(self):
        ring = groupkey.GroupKeyRing("chess")
        ring.install(1, SECRET)
        with pytest.raises(UnknownEpochError):
            ring.get(5)

    def test_skipped_old_epoch_is_stale(self):
        """An epoch below the newest we hold was rotated out, not unknown."""
        ring = groupkey.GroupKeyRing("chess")
        ring.install(4, SECRET)
        with pytest.raises(StaleEpochError):
            ring.get(2)

    def test_taxonomy_counters(self):
        saved = obs.get_registry()
        registry = obs.set_registry(obs.Registry(enabled=True))
        try:
            ring = groupkey.GroupKeyRing("chess", history=1)
            ring.install(1, SECRET)
            ring.install(2, OTHER)
            with pytest.raises(StaleEpochError):
                ring.get(1)
            with pytest.raises(UnknownEpochError):
                ring.get(9)
            assert registry.count("crypto.groupkey.reject.stale") == 1
            assert registry.count("crypto.groupkey.reject.unknown") == 1
            assert registry.count("crypto.groupkey.trimmed") == 1
        finally:
            obs.set_registry(saved)

    def test_ring_open_roundtrip(self, drbg):
        ring = groupkey.GroupKeyRing("chess")
        ek = ring.install(1, SECRET)
        env = groupkey.seal_epoch(ek, b"payload", drbg)
        ring.install(2, OTHER)
        # older-but-retained epoch still opens
        assert ring.open(env) == b"payload"

    def test_ring_open_requires_epoch_field(self):
        ring = groupkey.GroupKeyRing("chess")
        ring.install(1, SECRET)
        with pytest.raises(DecryptionError):
            ring.open({"body": "AAAA", "nonce": "AAAA"})
