"""PKCS#7 padding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.pkcs7 import pad, unpad
from repro.errors import InvalidPaddingError


class TestPad:
    def test_always_adds_at_least_one_byte(self):
        assert pad(b"", 16) == b"\x10" * 16
        assert pad(b"a" * 16, 16) == b"a" * 16 + b"\x10" * 16

    def test_partial_block(self):
        assert pad(b"abc", 8) == b"abc\x05\x05\x05\x05\x05"

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            pad(b"x", 0)
        with pytest.raises(ValueError):
            pad(b"x", 256)

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=200), st.integers(min_value=1, max_value=255))
    def test_padded_length_multiple(self, data, block):
        assert len(pad(data, block)) % block == 0


class TestUnpad:
    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=200), st.integers(min_value=1, max_value=64))
    def test_roundtrip(self, data, block):
        assert unpad(pad(data, block), block) == data

    def test_empty_rejected(self):
        with pytest.raises(InvalidPaddingError):
            unpad(b"", 16)

    def test_wrong_length_rejected(self):
        with pytest.raises(InvalidPaddingError):
            unpad(b"x" * 15, 16)

    def test_zero_pad_byte_rejected(self):
        with pytest.raises(InvalidPaddingError):
            unpad(b"a" * 15 + b"\x00", 16)

    def test_oversized_pad_byte_rejected(self):
        with pytest.raises(InvalidPaddingError):
            unpad(b"a" * 15 + b"\x11", 16)

    def test_inconsistent_padding_rejected(self):
        with pytest.raises(InvalidPaddingError):
            unpad(b"a" * 13 + b"\x02\x03\x03", 16)
