"""ChaCha20: RFC 8439 vectors, scalar/numpy equivalence, oracle check."""

import os

import pytest
from cryptography.hazmat.primitives.ciphers import Cipher, algorithms
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.chacha20 import chacha20_block, chacha20_xor

KEY = bytes(range(32))
NONCE = bytes.fromhex("000000090000004a00000000")


class TestBlockFunction:
    def test_rfc8439_block_vector(self):
        # RFC 8439 section 2.3.2
        block = chacha20_block(KEY, 1, NONCE)
        expected = bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e")
        assert block == expected

    def test_rfc8439_encryption_vector(self):
        # RFC 8439 section 2.4.2
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        plaintext = (b"Ladies and Gentlemen of the class of '99: If I could "
                     b"offer you only one tip for the future, sunscreen would be it.")
        ct = chacha20_xor(key, nonce, plaintext, counter=1)
        assert ct[:16] == bytes.fromhex("6e2e359a2568f98041ba0728dd0d6981")
        assert chacha20_xor(key, nonce, ct, counter=1) == plaintext

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            chacha20_block(b"short", 0, NONCE)

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            chacha20_block(KEY, 0, b"short")


class TestScalarNumpyEquivalence:
    @pytest.mark.parametrize("n", [1, 63, 64, 65, 128, 256, 1000, 4096])
    def test_paths_agree(self, n):
        data = os.urandom(n)
        nonce = os.urandom(12)
        scalar = chacha20_xor(KEY, nonce, data, use_numpy=False)
        vector = chacha20_xor(KEY, nonce, data, use_numpy=True)
        assert scalar == vector

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=2000), st.integers(min_value=0, max_value=2**31))
    def test_paths_agree_property(self, data, counter):
        scalar = chacha20_xor(KEY, NONCE, data, counter=counter, use_numpy=False)
        vector = chacha20_xor(KEY, NONCE, data, counter=counter, use_numpy=True)
        assert scalar == vector


class TestOracle:
    def test_against_cryptography(self):
        key = os.urandom(32)
        nonce = os.urandom(12)
        data = os.urandom(555)
        # cryptography's ChaCha20 takes a 16-byte nonce: counter || nonce
        full = (1).to_bytes(4, "little") + nonce
        enc = Cipher(algorithms.ChaCha20(key, full), mode=None).encryptor()
        assert chacha20_xor(key, nonce, data, counter=1) == enc.update(data)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=1000))
    def test_involution(self, data):
        assert chacha20_xor(KEY, NONCE, chacha20_xor(KEY, NONCE, data)) == data

    def test_empty_input(self):
        assert chacha20_xor(KEY, NONCE, b"") == b""

    def test_counter_separates_streams(self):
        data = b"\x00" * 64
        assert chacha20_xor(KEY, NONCE, data, counter=1) != chacha20_xor(
            KEY, NONCE, data, counter=2)

    def test_counter_wraps_32bit(self):
        # the numpy path masks the counter to 32 bits; scalar must agree
        data = b"\x00" * 130
        hi = 0xFFFFFFFF
        assert chacha20_xor(KEY, NONCE, data, counter=hi, use_numpy=False) == \
            chacha20_xor(KEY, NONCE, data, counter=hi, use_numpy=True)
