"""The hybrid wrapped-key envelope E_PK(x)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import envelope
from repro.crypto.drbg import HmacDrbg
from repro.errors import DecryptionError

ALL_SUITES = sorted(envelope.SUITES)
ALL_WRAPS = [envelope.WRAP_OAEP, envelope.WRAP_V15]


class TestRoundtrip:
    @pytest.mark.parametrize("suite", ALL_SUITES)
    @pytest.mark.parametrize("wrap", ALL_WRAPS)
    def test_all_suite_wrap_combinations(self, suite, wrap, kp1024):
        plaintext = b"payload " * 100
        env = envelope.seal(kp1024.public, plaintext, suite=suite, wrap=wrap)
        assert envelope.open_(kp1024.private, env) == plaintext

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=5000))
    def test_arbitrary_payloads(self, plaintext):
        from tests.conftest import cached_keypair
        kp = cached_keypair(1024, "a")
        env = envelope.seal(kp.public, plaintext, drbg=HmacDrbg(b"r"))
        assert envelope.open_(kp.private, env) == plaintext

    def test_empty_payload(self, kp1024):
        env = envelope.seal(kp1024.public, b"")
        assert envelope.open_(kp1024.private, env) == b""

    def test_v15_wrap_fits_512_bit_keys(self, kp512):
        env = envelope.seal(kp512.public, b"data", wrap=envelope.WRAP_V15)
        assert envelope.open_(kp512.private, env) == b"data"


class TestAad:
    def test_aad_binds_aead_suite(self, kp1024):
        env = envelope.seal(kp1024.public, b"m", aad=b"context")
        assert envelope.open_(kp1024.private, env, aad=b"context") == b"m"
        with pytest.raises(DecryptionError):
            envelope.open_(kp1024.private, env, aad=b"other")


class TestStructure:
    def test_envelope_is_self_describing(self, kp1024):
        env = envelope.seal(kp1024.public, b"m", suite="aes256-cbc",
                            wrap=envelope.WRAP_V15)
        assert env["suite"] == "aes256-cbc"
        assert env["wrap"] == envelope.WRAP_V15
        assert set(env) == {"suite", "wrap", "wrapped_key", "nonce", "body"}

    def test_randomized_per_seal(self, kp1024):
        a = envelope.seal(kp1024.public, b"same")
        b = envelope.seal(kp1024.public, b"same")
        assert a["body"] != b["body"]
        assert a["wrapped_key"] != b["wrapped_key"]

    def test_plaintext_not_visible(self, kp1024):
        import json

        secret = b"super-secret-password-material"
        env = envelope.seal(kp1024.public, secret * 5)
        wire = json.dumps(env).encode()
        assert secret not in wire


class TestRejection:
    def test_unknown_suite(self, kp1024):
        with pytest.raises(ValueError):
            envelope.seal(kp1024.public, b"m", suite="rot13")
        env = envelope.seal(kp1024.public, b"m")
        env["suite"] = "rot13"
        with pytest.raises(DecryptionError):
            envelope.open_(kp1024.private, env)

    def test_unknown_wrap(self, kp1024):
        with pytest.raises(ValueError):
            envelope.seal(kp1024.public, b"m", wrap="rsa-magic")
        env = envelope.seal(kp1024.public, b"m")
        env["wrap"] = "rsa-magic"
        with pytest.raises(DecryptionError):
            envelope.open_(kp1024.private, env)

    def test_wrong_recipient(self, kp1024, kp1024_b):
        env = envelope.seal(kp1024.public, b"m")
        with pytest.raises(DecryptionError):
            envelope.open_(kp1024_b.private, env)

    def test_missing_field(self, kp1024):
        env = envelope.seal(kp1024.public, b"m")
        del env["nonce"]
        with pytest.raises(DecryptionError):
            envelope.open_(kp1024.private, env)

    def test_tampered_body(self, kp1024):
        from repro.utils.encoding import b64decode, b64encode

        env = envelope.seal(kp1024.public, b"m" * 50)
        body = bytearray(b64decode(env["body"]))
        body[0] ^= 1
        env["body"] = b64encode(bytes(body))
        with pytest.raises(DecryptionError):
            envelope.open_(kp1024.private, env)

    def test_swapped_wrapped_key(self, kp1024):
        env_a = envelope.seal(kp1024.public, b"message-a")
        env_b = envelope.seal(kp1024.public, b"message-b")
        env_a["wrapped_key"] = env_b["wrapped_key"]
        with pytest.raises(DecryptionError):
            envelope.open_(kp1024.private, env_a)

    def test_bad_nonce_length(self, kp1024):
        from repro.utils.encoding import b64encode

        env = envelope.seal(kp1024.public, b"m")
        env["nonce"] = b64encode(b"short")
        with pytest.raises(DecryptionError):
            envelope.open_(kp1024.private, env)
