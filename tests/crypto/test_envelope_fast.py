"""Fast-path crypto: multi-recipient envelopes + session resumption."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.crypto import envelope, resume
from repro.crypto.drbg import HmacDrbg
from repro.errors import DecryptionError, ReplayError, UnknownSessionError
from tests.conftest import cached_keypair

ALL_SUITES = sorted(envelope.SUITES)
ALL_WRAPS = [envelope.WRAP_OAEP, envelope.WRAP_V15]


def _keys(wrap, n=3):
    # OAEP-SHA256 needs a modulus > 2*32+2 bytes; 512-bit keys only fit v1.5.
    bits = 1024 if wrap == envelope.WRAP_OAEP else 512
    return [cached_keypair(bits, f"fast-{i}") for i in range(n)]


class TestSealMany:
    @pytest.mark.parametrize("suite", ALL_SUITES)
    @pytest.mark.parametrize("wrap", ALL_WRAPS)
    def test_roundtrip_every_recipient(self, suite, wrap):
        kps = _keys(wrap)
        plaintext = b"group payload " * 50
        sealed = envelope.seal_many([kp.public for kp in kps], plaintext,
                                    suite=suite, wrap=wrap, aad=b"ctx")
        assert not sealed.seeds
        for kp in kps:
            opened = envelope.open_detailed(kp.private, sealed.envelope,
                                            aad=b"ctx")
            assert opened.plaintext == plaintext
            assert opened.suite == suite
            assert opened.resume_seed is None

    @pytest.mark.parametrize("suite", ALL_SUITES)
    @pytest.mark.parametrize("wrap", ALL_WRAPS)
    def test_resumable_roundtrip_and_distinct_seeds(self, suite, wrap):
        kps = _keys(wrap)
        seeds = envelope.mint_seeds([kp.public for kp in kps])
        sealed = envelope.seal_many([kp.public for kp in kps], b"m",
                                    suite=suite, wrap=wrap, seeds=seeds)
        assert sealed.seeds == seeds
        assert len(sealed.seeds) == len(kps)
        assert len(set(sealed.seeds.values())) == len(kps)  # pair-wise seeds
        for kp in kps:
            opened = envelope.open_detailed(kp.private, sealed.envelope)
            assert opened.plaintext == b"m"
            fp = kp.public.fingerprint().hex()
            assert opened.resume_seed == sealed.seeds[fp]
            assert len(opened.resume_seed) == envelope.RESUME_SEED_LEN

    def test_seeds_must_cover_every_recipient(self):
        kps = _keys(envelope.WRAP_V15, n=2)
        seeds = envelope.mint_seeds([kps[0].public])
        with pytest.raises(ValueError):
            envelope.seal_many([kp.public for kp in kps], b"m",
                               wrap=envelope.WRAP_V15, seeds=seeds)

    @pytest.mark.parametrize("suite", ALL_SUITES)
    @pytest.mark.parametrize("wrap", ALL_WRAPS)
    def test_tampered_body_rejected(self, suite, wrap):
        kps = _keys(wrap, n=2)
        # Pin the CEK/IV stream: with the process-global drbg the CBC
        # suites (no tag) would hit the ~1/256 lucky-padding case or not
        # depending on how many draws earlier tests made.
        sealed = envelope.seal_many([kp.public for kp in kps], b"payload",
                                    suite=suite, wrap=wrap,
                                    drbg=HmacDrbg(
                                        seed=f"tamper|{suite}|{wrap}".encode()))
        env = dict(sealed.envelope)
        body = env["body"]
        env["body"] = ("A" if body[0] != "A" else "B") + body[1:]
        for kp in kps:
            with pytest.raises(DecryptionError):
                envelope.open_(kp.private, env)

    def test_non_recipient_rejected(self):
        member, outsider = _keys(envelope.WRAP_V15, n=2)
        sealed = envelope.seal_many([member.public], b"secret",
                                    wrap=envelope.WRAP_V15)
        with pytest.raises(DecryptionError):
            envelope.open_(outsider.private, sealed.envelope)

    def test_aad_mismatch_rejected(self):
        kp = _keys(envelope.WRAP_V15, n=1)[0]
        sealed = envelope.seal_many([kp.public], b"m", wrap=envelope.WRAP_V15,
                                    aad=b"right")
        with pytest.raises(DecryptionError):
            envelope.open_(kp.private, sealed.envelope, aad=b"wrong")

    def test_needs_at_least_one_recipient(self):
        with pytest.raises(ValueError):
            envelope.seal_many([], b"m")

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=4000))
    def test_arbitrary_payloads(self, plaintext):
        kps = _keys(envelope.WRAP_V15, n=2)
        sealed = envelope.seal_many([kp.public for kp in kps], plaintext,
                                    wrap=envelope.WRAP_V15,
                                    drbg=HmacDrbg(b"fixed"))
        for kp in kps:
            assert envelope.open_(kp.private, sealed.envelope) == plaintext

    def test_single_recipient_baseline_seal_unchanged(self):
        """Ablation bit-compatibility: with the fast path off, protocol
        code calls :func:`envelope.seal`, whose draw order and format are
        untouched — an old-format envelope opens via the same
        ``open_detailed`` the fast path uses."""
        kp = _keys(envelope.WRAP_V15, n=1)[0]
        env = envelope.seal(kp.public, b"legacy", wrap=envelope.WRAP_V15,
                            drbg=HmacDrbg(b"legacy-draws"))
        assert set(env) == {"suite", "wrap", "wrapped_key", "nonce", "body"}
        opened = envelope.open_detailed(kp.private, env)
        assert opened.plaintext == b"legacy"
        assert opened.resume_seed is None


class TestResumedFrames:
    @pytest.mark.parametrize("suite", ALL_SUITES)
    def test_roundtrip_all_suites(self, suite):
        seed = bytes(range(16))
        sender = resume.derive_session(seed, suite, now=0.0)
        receiver = resume.derive_session(seed, suite, now=0.0)
        for i in range(5):
            frame = resume.seal_resumed(sender, b"msg %d" % i, aad=b"ctx")
            assert frame["resume"] == sender.sid
            assert resume.open_resumed(receiver, frame, aad=b"ctx") == b"msg %d" % i

    @pytest.mark.parametrize("suite", ALL_SUITES)
    def test_replayed_frame_rejected(self, suite):
        seed = b"\x07" * 16
        sender = resume.derive_session(seed, suite, now=0.0)
        receiver = resume.derive_session(seed, suite, now=0.0)
        frame = resume.seal_resumed(sender, b"once")
        assert resume.open_resumed(receiver, frame) == b"once"
        with pytest.raises(ReplayError):
            resume.open_resumed(receiver, frame)

    @pytest.mark.parametrize("suite", ALL_SUITES)
    def test_tampered_frame_rejected_without_state_advance(self, suite):
        seed = b"\x21" * 16
        sender = resume.derive_session(seed, suite, now=0.0)
        receiver = resume.derive_session(seed, suite, now=0.0)
        frame = resume.seal_resumed(sender, b"payload", aad=b"a")
        bad = dict(frame)
        body = bad["body"]
        bad["body"] = ("A" if body[0] != "A" else "B") + body[1:]
        with pytest.raises(DecryptionError):
            resume.open_resumed(receiver, bad, aad=b"a")
        # the failed frame must not burn the seq: the original still opens
        assert resume.open_resumed(receiver, frame, aad=b"a") == b"payload"

    def test_aad_bound(self):
        seed = b"\x33" * 16
        sender = resume.derive_session(seed, "chacha20poly1305", now=0.0)
        receiver = resume.derive_session(seed, "chacha20poly1305", now=0.0)
        frame = resume.seal_resumed(sender, b"m", aad=b"one")
        with pytest.raises(DecryptionError):
            resume.open_resumed(receiver, frame, aad=b"two")

    def test_suite_mismatch_rejected(self):
        seed = b"\x44" * 16
        sender = resume.derive_session(seed, "chacha20poly1305", now=0.0)
        receiver = resume.derive_session(seed, "chacha20poly1305", now=0.0)
        frame = resume.seal_resumed(sender, b"m")
        frame["suite"] = "aes128-cbc"
        with pytest.raises(DecryptionError):
            resume.open_resumed(receiver, frame)

    def test_derivation_is_deterministic_and_suite_separated(self):
        seed = b"\x55" * 16
        a = resume.derive_session(seed, "aes128-cbc", now=0.0)
        b = resume.derive_session(seed, "aes128-cbc", now=0.0)
        c = resume.derive_session(seed, "aes256-cbc", now=0.0)
        assert (a.key, a.mac_key, a.sid) == (b.key, b.mac_key, b.sid)
        assert a.key != c.key[:len(a.key)]
        assert a.sid == c.sid  # the public id names the seed, not the suite


class TestSenderResumeCache:
    def test_hit_within_budget(self):
        cache = resume.SenderResumeCache(ttl=10.0, max_uses=4)
        session = cache.store("fp1", b"\x01" * 16, "aes128-cbc", now=0.0)
        assert cache.get("fp1", now=1.0) is session

    def test_ttl_expiry(self):
        cache = resume.SenderResumeCache(ttl=10.0)
        cache.store("fp1", b"\x01" * 16, "aes128-cbc", now=0.0)
        assert cache.get("fp1", now=11.0) is None
        assert len(cache) == 0

    def test_use_budget_forces_rekey(self):
        cache = resume.SenderResumeCache(ttl=100.0, max_uses=2)
        session = cache.store("fp1", b"\x01" * 16, "aes128-cbc", now=0.0)
        for _ in range(2):
            resume.seal_resumed(session, b"m")
        assert cache.get("fp1", now=1.0) is None

    def test_lru_eviction(self):
        cache = resume.SenderResumeCache(max_peers=2)
        cache.store("fp1", b"\x01" * 16, "aes128-cbc", now=0.0)
        cache.store("fp2", b"\x02" * 16, "aes128-cbc", now=0.0)
        cache.get("fp1", now=0.0)               # fp1 becomes most-recent
        cache.store("fp3", b"\x03" * 16, "aes128-cbc", now=0.0)
        assert cache.get("fp2", now=0.0) is None
        assert cache.get("fp1", now=0.0) is not None

    def test_invalidate_sid(self):
        cache = resume.SenderResumeCache()
        session = cache.store("fp1", b"\x01" * 16, "aes128-cbc", now=0.0)
        assert cache.invalidate_sid(session.sid) is True
        assert cache.invalidate_sid(session.sid) is False  # already gone
        assert cache.get("fp1", now=0.0) is None


class TestReceiverResumeStore:
    def _pair(self, **kw):
        store = resume.ReceiverResumeStore(**kw)
        seed = b"\x10" * 16
        sender = resume.derive_session(seed, "chacha20poly1305", now=0.0)
        store.register(seed, "chacha20poly1305", "alice-cred", now=0.0)
        return store, sender

    def test_open_returns_bound_identity(self):
        store, sender = self._pair()
        frame = resume.seal_resumed(sender, b"hello", aad=b"x")
        plain, identity = store.open(frame, b"x", now=1.0)
        assert plain == b"hello"
        assert identity == "alice-cred"

    def test_unknown_sid_raises_unknown_session(self):
        store = resume.ReceiverResumeStore()
        sender = resume.derive_session(b"\x66" * 16, "aes128-cbc", now=0.0)
        frame = resume.seal_resumed(sender, b"m")
        with pytest.raises(UnknownSessionError) as exc_info:
            store.open(frame, b"", now=0.0)
        assert exc_info.value.sid == sender.sid

    def test_expired_session_raises_unknown_session(self):
        store, sender = self._pair(ttl=5.0)
        frame = resume.seal_resumed(sender, b"m", aad=b"x")
        with pytest.raises(UnknownSessionError):
            store.open(frame, b"x", now=6.0)
        assert len(store) == 0

    def test_replay_blocked_emits_hook(self):
        registry = obs.Registry(enabled=True)
        saved = (obs.get_registry(), obs.get_events())
        obs.set_registry(registry)
        obs.set_events(obs.ProtocolEvents(registry=registry))
        try:
            blocked = []
            obs.on("on_replay_blocked", lambda **kw: blocked.append(kw))
            store, sender = self._pair()
            frame = resume.seal_resumed(sender, b"m", aad=b"x")
            store.open(frame, b"x", now=0.0)
            with pytest.raises(ReplayError):
                store.open(frame, b"x", now=0.0)
        finally:
            obs.set_registry(saved[0])
            obs.set_events(saved[1])
        assert blocked and blocked[0]["kind"] == "resume"
        assert registry.count("crypto.resume.replay_blocked") == 1

    def test_lru_bound(self):
        store = resume.ReceiverResumeStore(max_sessions=2)
        for i in range(3):
            store.register(bytes([i]) * 16, "aes128-cbc", f"peer{i}", now=0.0)
        assert len(store) == 2

    def test_duplicate_register_keeps_replay_high_water(self):
        """A replayed establishing envelope must not reset ``seq``:
        otherwise a recorded run of accepted resumed frames could be
        replayed wholesale against the re-registered session."""
        store = resume.ReceiverResumeStore()
        seed = b"\x77" * 16
        sender = resume.derive_session(seed, "chacha20poly1305", now=0.0)
        store.register(seed, "chacha20poly1305", "alice-cred", now=0.0)
        frames = [resume.seal_resumed(sender, b"m%d" % i, aad=b"x")
                  for i in range(3)]
        for frame in frames:
            store.open(frame, b"x", now=0.0)
        # attacker (or a retried delivery) replays the establishing envelope
        assert store.register(seed, "chacha20poly1305", "alice-cred",
                              now=1.0) == sender.sid
        for frame in frames:
            with pytest.raises(ReplayError):
                store.open(frame, b"x", now=1.0)
        # the live session keeps working past the duplicate registration
        fresh = resume.seal_resumed(sender, b"fresh", aad=b"x")
        plain, identity = store.open(fresh, b"x", now=1.0)
        assert plain == b"fresh" and identity == "alice-cred"


class TestSeedCommitments:
    def test_commitment_roundtrip(self):
        from repro.xmllib import Element

        doc = Element("Body")
        seeds = {"fp-a": b"\x01" * 16, "fp-b": b"\x02" * 16}
        resume.add_seed_commitments(doc, seeds)
        for fp, seed in seeds.items():
            assert resume.check_seed_commitment(doc, fp, seed)

    def test_wrong_seed_or_foreign_fingerprint_rejected(self):
        from repro.xmllib import Element

        doc = Element("Body")
        seeds = {"fp-a": b"\x01" * 16, "fp-b": b"\x02" * 16}
        resume.add_seed_commitments(doc, seeds)
        assert not resume.check_seed_commitment(doc, "fp-a", b"\x03" * 16)
        # a co-recipient's genuine seed does not verify under our fp
        assert not resume.check_seed_commitment(doc, "fp-a", seeds["fp-b"])
        assert not resume.check_seed_commitment(doc, "fp-c", b"\x01" * 16)

    def test_document_without_commitments_rejected(self):
        from repro.xmllib import Element

        assert not resume.check_seed_commitment(Element("Body"), "fp",
                                                b"\x01" * 16)

    def test_re_adding_replaces_stale_commitments(self):
        from repro.xmllib import Element

        doc = Element("Body")
        resume.add_seed_commitments(doc, {"fp-a": b"\x01" * 16})
        resume.add_seed_commitments(doc, {"fp-a": b"\x09" * 16})
        assert len(doc.findall(resume.COMMITS_TAG)) == 1
        assert not resume.check_seed_commitment(doc, "fp-a", b"\x01" * 16)
        assert resume.check_seed_commitment(doc, "fp-a", b"\x09" * 16)

    def test_commitment_reveals_neither_seed_nor_sid(self):
        seed = b"\x42" * 16
        assert resume.seed_commitment(seed) != resume.session_id(seed)
        assert seed.hex() not in resume.seed_commitment(seed)
