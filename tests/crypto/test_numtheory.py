"""Number theory behind RSA: egcd, inverses, Miller-Rabin, CRT."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.numtheory import (
    crt_combine,
    egcd,
    generate_prime,
    is_probable_prime,
    lcm,
    modinv,
)

_RNG = HmacDrbg(b"numtheory-tests")


class TestEgcd:
    @given(st.integers(min_value=1, max_value=10**9),
           st.integers(min_value=1, max_value=10**9))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g

    def test_zero_cases(self):
        assert egcd(0, 5)[0] == 5
        assert egcd(5, 0)[0] == 5


class TestModinv:
    @given(st.integers(min_value=2, max_value=10**6))
    def test_inverse_property(self, m):
        # pick an a coprime to m
        a = 1
        for candidate in range(2, 50):
            if math.gcd(candidate, m) == 1:
                a = candidate
                break
        inv = modinv(a, m)
        assert (a * inv) % m == 1

    def test_non_coprime_rejected(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    def test_negative_input_normalized(self):
        assert modinv(-3, 7) == modinv(4, 7)


KNOWN_PRIMES = [2, 3, 5, 7, 541, 7919, 104729,
                2**31 - 1,  # Mersenne
                (1 << 61) - 1]
KNOWN_COMPOSITES = [1, 4, 9, 15, 341,  # 341 = 11*31, base-2 pseudoprime
                    561,  # Carmichael
                    1105, 2821, 6601, 2**31, 7919 * 104729]


class TestMillerRabin:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_accepts_primes(self, p):
        assert is_probable_prime(p, _RNG.rand_below)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_rejects_composites(self, n):
        assert not is_probable_prime(n, _RNG.rand_below)

    def test_rejects_negatives_and_small(self):
        assert not is_probable_prime(0, _RNG.rand_below)
        assert not is_probable_prime(-7, _RNG.rand_below)

    def test_carmichael_numbers_rejected(self):
        # Fermat-fooling numbers that Miller-Rabin must still catch
        for n in (561, 41041, 825265):
            assert not is_probable_prime(n, _RNG.rand_below)


class TestGeneratePrime:
    @pytest.mark.parametrize("bits", [16, 32, 64, 128])
    def test_exact_bit_length(self, bits):
        rng = HmacDrbg(b"prime-%d" % bits)
        p = generate_prime(bits, rng.rand_bits, rng.rand_below)
        assert p.bit_length() == bits
        assert p % 2 == 1
        assert is_probable_prime(p, rng.rand_below)

    def test_top_two_bits_set(self):
        rng = HmacDrbg(b"topbits")
        p = generate_prime(64, rng.rand_bits, rng.rand_below)
        assert (p >> 62) == 0b11

    def test_too_small_rejected(self):
        rng = HmacDrbg(b"small")
        with pytest.raises(ValueError):
            generate_prime(4, rng.rand_bits, rng.rand_below)

    def test_deterministic_given_rng(self):
        a = HmacDrbg(b"det")
        b = HmacDrbg(b"det")
        assert (generate_prime(48, a.rand_bits, a.rand_below)
                == generate_prime(48, b.rand_bits, b.rand_below))


class TestCrt:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10**12))
    def test_recombination(self, m):
        p, q = 1_000_003, 999_983  # distinct primes, p > q
        m = m % (p * q)
        q_inv = modinv(q, p)
        assert crt_combine(m % p, m % q, p, q, q_inv) == m


class TestLcm:
    @given(st.integers(min_value=1, max_value=10**6),
           st.integers(min_value=1, max_value=10**6))
    def test_matches_math(self, a, b):
        assert lcm(a, b) == math.lcm(a, b)
