"""High-level signing API (S_SK of the paper)."""

import pytest

from repro.crypto import signing
from repro.errors import InvalidSignatureError


class TestSchemes:
    @pytest.mark.parametrize("scheme", [signing.SCHEME_PSS, signing.SCHEME_V15])
    def test_roundtrip(self, scheme, kp512):
        sig = signing.sign(kp512.private, b"msg", scheme=scheme)
        signing.verify(kp512.public, b"msg", sig, scheme=scheme)
        assert signing.is_valid(kp512.public, b"msg", sig, scheme=scheme)

    def test_unknown_scheme_sign(self, kp512):
        with pytest.raises(ValueError):
            signing.sign(kp512.private, b"m", scheme="dsa")

    def test_unknown_scheme_verify(self, kp512):
        with pytest.raises(InvalidSignatureError):
            signing.verify(kp512.public, b"m", b"sig", scheme="dsa")

    def test_scheme_mismatch_rejected(self, kp512):
        sig = signing.sign(kp512.private, b"m", scheme=signing.SCHEME_PSS)
        assert not signing.is_valid(kp512.public, b"m", sig,
                                    scheme=signing.SCHEME_V15)

    def test_is_valid_false_on_forgery(self, kp512, kp512_b):
        sig = signing.sign(kp512.private, b"m")
        assert not signing.is_valid(kp512_b.public, b"m", sig)
        assert not signing.is_valid(kp512.public, b"other", sig)

    def test_default_scheme_is_pss(self):
        assert signing.DEFAULT_SCHEME == signing.SCHEME_PSS
