"""HMAC-DRBG: determinism, independence, draw helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg, system_drbg


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = HmacDrbg(b"seed")
        b = HmacDrbg(b"seed")
        assert a.generate(100) == b.generate(100)

    def test_different_seeds_differ(self):
        assert HmacDrbg(b"seed-1").generate(32) != HmacDrbg(b"seed-2").generate(32)

    def test_personalization_separates(self):
        a = HmacDrbg(b"seed", personalization=b"role-a")
        b = HmacDrbg(b"seed", personalization=b"role-b")
        assert a.generate(32) != b.generate(32)

    def test_stream_continuation(self):
        whole = HmacDrbg(b"s").generate(64)
        split = HmacDrbg(b"s")
        assert split.generate(32) + split.generate(32) != whole  # state advances
        # but two identical call sequences match
        x = HmacDrbg(b"s")
        y = HmacDrbg(b"s")
        assert [x.generate(7) for _ in range(5)] == [y.generate(7) for _ in range(5)]


class TestGenerate:
    def test_zero_bytes(self):
        assert HmacDrbg(b"s").generate(0) == b""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"s").generate(-1)

    def test_large_request_split_internally(self):
        data = HmacDrbg(b"s").generate(HmacDrbg.MAX_BYTES_PER_REQUEST + 100)
        assert len(data) == HmacDrbg.MAX_BYTES_PER_REQUEST + 100

    def test_additional_input_changes_output(self):
        a = HmacDrbg(b"s").generate(32, additional=b"x")
        b = HmacDrbg(b"s").generate(32)
        assert a != b

    def test_reseed_changes_stream(self):
        a = HmacDrbg(b"s")
        b = HmacDrbg(b"s")
        a.reseed(b"fresh entropy")
        assert a.generate(32) != b.generate(32)


class TestDraws:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=1000))
    def test_rand_below_in_range(self, bound):
        rng = HmacDrbg(b"draws")
        for _ in range(10):
            assert 0 <= rng.rand_below(bound) < bound

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=256))
    def test_rand_bits_in_range(self, bits):
        value = HmacDrbg(b"bits").rand_bits(bits)
        assert 0 <= value < (1 << bits)

    def test_rand_range(self):
        rng = HmacDrbg(b"rr")
        for _ in range(20):
            assert 10 <= rng.rand_range(10, 20) < 20

    def test_rand_range_empty_rejected(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"s").rand_range(5, 5)

    def test_uniform_in_unit_interval(self):
        rng = HmacDrbg(b"u")
        values = [rng.uniform() for _ in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.2 < sum(values) / len(values) < 0.8  # crude sanity

    def test_rand_below_covers_small_range(self):
        rng = HmacDrbg(b"cover")
        seen = {rng.rand_below(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestFork:
    def test_forks_are_deterministic(self):
        a = HmacDrbg(b"root").fork(b"child")
        b = HmacDrbg(b"root").fork(b"child")
        assert a.generate(32) == b.generate(32)

    def test_forks_independent_of_label(self):
        root = HmacDrbg(b"root")
        a = root.fork(b"a")
        b = root.fork(b"b")
        assert a.generate(32) != b.generate(32)


def test_system_drbg_differs_each_time():
    assert system_drbg().generate(32) != system_drbg().generate(32)
