"""CBC and CTR modes over AES, against the cryptography-package oracle."""

import os

import pytest
from cryptography.hazmat.primitives.ciphers import Cipher, algorithms
from cryptography.hazmat.primitives.ciphers import modes as cmodes
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.modes import CBC, CTR
from repro.errors import DecryptionError, InvalidPaddingError


class TestCBC:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=500))
    def test_roundtrip(self, plaintext):
        key, iv = b"k" * 16, b"i" * 16
        cbc = CBC(key)
        assert cbc.decrypt(cbc.encrypt(plaintext, iv), iv) == plaintext

    def test_against_oracle(self):
        key, iv = os.urandom(16), os.urandom(16)
        data = os.urandom(64)  # multiple of 16, no padding ambiguity
        enc = Cipher(algorithms.AES(key), cmodes.CBC(iv)).encryptor()
        expected = enc.update(data) + enc.finalize()
        ours = CBC(key).encrypt(data, iv)
        # ours has one extra PKCS#7 block appended; prefix must match
        assert ours[:64] == expected

    def test_wrong_iv_garbles(self):
        cbc = CBC(b"k" * 16)
        ct = cbc.encrypt(b"hello world padded", b"i" * 16)
        with pytest.raises(DecryptionError):
            # wrong IV garbles the first block; padding usually breaks.
            # If padding accidentally validates, content differs - so force
            # a strict check by decrypting with truncated ciphertext too.
            out = cbc.decrypt(ct, b"j" * 16)
            if out == b"hello world padded":
                raise AssertionError("wrong IV produced the right plaintext")
            raise DecryptionError("garbled as expected")

    def test_tampered_ciphertext_breaks_padding_or_content(self):
        cbc = CBC(b"k" * 16)
        ct = bytearray(cbc.encrypt(b"x" * 32, b"i" * 16))
        ct[-1] ^= 0xFF
        try:
            out = cbc.decrypt(bytes(ct), b"i" * 16)
        except InvalidPaddingError:
            return
        assert out != b"x" * 32

    def test_bad_lengths_rejected(self):
        cbc = CBC(b"k" * 16)
        with pytest.raises(ValueError):
            cbc.encrypt(b"data", b"short-iv")
        with pytest.raises(DecryptionError):
            cbc.decrypt(b"x" * 15, b"i" * 16)
        with pytest.raises(DecryptionError):
            cbc.decrypt(b"", b"i" * 16)

    def test_ciphertext_longer_than_plaintext(self):
        cbc = CBC(b"k" * 16)
        assert len(cbc.encrypt(b"", b"i" * 16)) == 16  # one padding block
        assert len(cbc.encrypt(b"a" * 16, b"i" * 16)) == 32


class TestCTR:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=500))
    def test_roundtrip(self, plaintext):
        ctr = CTR(b"k" * 16)
        nonce = b"n" * 12
        assert ctr.decrypt(ctr.encrypt(plaintext, nonce), nonce) == plaintext

    def test_against_oracle(self):
        key, nonce = os.urandom(16), os.urandom(12)
        data = os.urandom(100)
        full_nonce = nonce + b"\x00\x00\x00\x00"
        enc = Cipher(algorithms.AES(key), cmodes.CTR(full_nonce)).encryptor()
        assert CTR(key).encrypt(data, nonce) == enc.update(data) + enc.finalize()

    def test_length_preserving(self):
        ctr = CTR(b"k" * 16)
        for n in (0, 1, 15, 16, 17, 100):
            assert len(ctr.encrypt(b"p" * n, b"n" * 12)) == n

    def test_nonce_reuse_is_detectable(self):
        # documents WHY nonces must be fresh: same nonce = same keystream
        ctr = CTR(b"k" * 16)
        a = ctr.encrypt(b"\x00" * 32, b"n" * 12)
        b = ctr.encrypt(b"\x00" * 32, b"n" * 12)
        assert a == b

    def test_bad_nonce_rejected(self):
        with pytest.raises(ValueError):
            CTR(b"k" * 16).encrypt(b"data", b"short")
