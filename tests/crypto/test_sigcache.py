"""The shared LRU signature-verification cache."""

import pytest

from repro import obs
from repro.crypto import signing, sigcache
from repro.errors import InvalidSignatureError
from tests.conftest import cached_keypair


@pytest.fixture()
def registry():
    registry = obs.Registry(enabled=True)
    saved = obs.set_registry(registry)
    yield registry
    obs.set_registry(saved)


@pytest.fixture()
def fresh_cache():
    cache = sigcache.SignatureCache(max_entries=4)
    saved = sigcache.set_sig_cache(cache)
    yield cache
    sigcache.set_sig_cache(saved)


def _signed(label="sig-a", message=b"message"):
    kp = cached_keypair(512, label)
    return kp, message, signing.sign(kp.private, message)


class TestSignatureCache:
    def test_second_verify_is_a_hit(self, registry, fresh_cache):
        kp, message, signature = _signed()
        for _ in range(2):
            fresh_cache.verify(kp.public, message, signature,
                               signing.DEFAULT_SCHEME)
        assert registry.count("crypto.sigcache.misses") == 1
        assert registry.count("crypto.sigcache.hits") == 1
        # the expensive exponentiation ran exactly once
        assert registry.count("crypto.rsa.verify_op") == 1

    def test_bad_signature_raises_and_is_never_cached(self, registry,
                                                      fresh_cache):
        kp, message, signature = _signed()
        forged = bytes([signature[0] ^ 1]) + signature[1:]
        for _ in range(2):
            with pytest.raises(InvalidSignatureError):
                fresh_cache.verify(kp.public, message, forged,
                                   signing.DEFAULT_SCHEME)
        assert len(fresh_cache) == 0
        assert registry.count("crypto.sigcache.misses") == 2

    def test_key_includes_message_and_key(self, fresh_cache):
        kp, message, signature = _signed()
        other = cached_keypair(512, "sig-b")
        fresh_cache.verify(kp.public, message, signature,
                           signing.DEFAULT_SCHEME)
        with pytest.raises(InvalidSignatureError):
            fresh_cache.verify(other.public, message, signature,
                               signing.DEFAULT_SCHEME)
        with pytest.raises(InvalidSignatureError):
            fresh_cache.verify(kp.public, b"other message", signature,
                               signing.DEFAULT_SCHEME)

    def test_lru_eviction_bounded(self, registry, fresh_cache):
        kp = cached_keypair(512, "sig-a")
        for i in range(6):
            message = b"m%d" % i
            fresh_cache.verify(kp.public, message,
                               signing.sign(kp.private, message),
                               signing.DEFAULT_SCHEME)
        assert len(fresh_cache) == 4
        assert registry.count("crypto.sigcache.evictions") == 2

    def test_invalidate_flushes(self, registry, fresh_cache):
        kp, message, signature = _signed()
        fresh_cache.verify(kp.public, message, signature,
                           signing.DEFAULT_SCHEME)
        fresh_cache.invalidate()
        fresh_cache.verify(kp.public, message, signature,
                           signing.DEFAULT_SCHEME)
        assert registry.count("crypto.sigcache.misses") == 2
        assert registry.count("crypto.sigcache.hits") == 0

    def test_cached_verify_uses_process_default(self, registry, fresh_cache):
        kp, message, signature = _signed()
        sigcache.cached_verify(kp.public, message, signature,
                               signing.DEFAULT_SCHEME)
        sigcache.cached_verify(kp.public, message, signature,
                               signing.DEFAULT_SCHEME)
        assert registry.count("crypto.sigcache.hits") == 1
