"""RSA keys and the raw trapdoor permutation."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import (
    PUBLIC_EXPONENT,
    KeyPair,
    PrivateKey,
    PublicKey,
    generate_keypair,
)
from repro.errors import InvalidKeyError
from tests.conftest import cached_keypair


class TestKeyGeneration:
    def test_deterministic_from_seed(self):
        a = generate_keypair(512, HmacDrbg(b"same-seed"))
        b = generate_keypair(512, HmacDrbg(b"same-seed"))
        assert a.public == b.public
        assert a.private.d == b.private.d

    def test_different_seeds_different_keys(self):
        a = generate_keypair(512, HmacDrbg(b"seed-x"))
        b = generate_keypair(512, HmacDrbg(b"seed-y"))
        assert a.public != b.public

    @pytest.mark.parametrize("bits", [512, 768, 1024])
    def test_modulus_bit_length_exact(self, bits):
        kp = cached_keypair(bits, "a") if bits in (512, 1024) else generate_keypair(
            bits, HmacDrbg(b"bits-%d" % bits))
        assert kp.public.bits == bits
        assert kp.bits == bits

    def test_unsupported_size_rejected(self):
        with pytest.raises(InvalidKeyError):
            generate_keypair(600, HmacDrbg(b"x"))

    def test_key_structure(self, kp512):
        priv = kp512.private
        assert priv.p * priv.q == priv.n
        assert priv.p > priv.q
        assert priv.e == PUBLIC_EXPONENT
        # d is a working inverse of e modulo lambda(n)
        from math import gcd
        lam = (priv.p - 1) * (priv.q - 1) // gcd(priv.p - 1, priv.q - 1)
        assert (priv.e * priv.d) % lam == 1

    def test_crt_parameters_derived(self, kp512):
        priv = kp512.private
        assert priv.dp == priv.d % (priv.p - 1)
        assert priv.dq == priv.d % (priv.q - 1)
        assert (priv.q * priv.q_inv) % priv.p == 1


class TestRawOperations:
    def test_encrypt_decrypt_inverse(self, kp512):
        m = 0x1234567890ABCDEF
        c = kp512.public.encrypt_int(m)
        assert kp512.private.decrypt_int(c) == m

    def test_sign_verify_inverse(self, kp512):
        m = 98765432123456789
        s = kp512.private.sign_int(m)
        assert kp512.public.verify_int(s) == m

    def test_crt_matches_plain_exponentiation(self, kp512):
        priv = kp512.private
        c = 0xDEADBEEF
        assert priv.decrypt_int(c) == pow(c, priv.d, priv.n)

    def test_out_of_range_rejected(self, kp512):
        with pytest.raises(ValueError):
            kp512.public.encrypt_int(kp512.public.n)
        with pytest.raises(ValueError):
            kp512.private.decrypt_int(-1)


class TestSerialization:
    def test_public_key_dict_roundtrip(self, kp512):
        restored = PublicKey.from_dict(kp512.public.to_dict())
        assert restored == kp512.public

    def test_malformed_dict_rejected(self):
        with pytest.raises(InvalidKeyError):
            PublicKey.from_dict({"kty": "EC", "n": "0x5", "e": "0x3"})
        with pytest.raises(InvalidKeyError):
            PublicKey.from_dict({"kty": "RSA"})
        with pytest.raises(InvalidKeyError):
            PublicKey.from_dict({"kty": "RSA", "n": "not-hex", "e": "0x3"})


class TestFingerprint:
    def test_stable(self, kp512):
        assert kp512.public.fingerprint() == kp512.public.fingerprint()
        assert len(kp512.public.fingerprint()) == 32

    def test_distinct_keys_distinct_fingerprints(self, kp512, kp512_b):
        assert kp512.public.fingerprint() != kp512_b.public.fingerprint()

    def test_byte_length(self, kp512, kp1024):
        assert kp512.public.byte_length == 64
        assert kp1024.public.byte_length == 128


class TestPublicKeyFromPrivate:
    def test_matches(self, kp512):
        assert kp512.private.public_key() == kp512.public
