"""HMAC-SHA256 against the stdlib oracle and RFC 4231 vectors."""

import hashlib
import hmac as stdhmac

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac import HMAC, hmac_sha256, verify_hmac


class TestVectors:
    def test_rfc4231_case1(self):
        key = b"\x0b" * 20
        data = b"Hi There"
        expected = ("b0344c61d8db38535ca8afceaf0bf12b"
                    "881dc200c9833da726e9376c2e32cff7")
        assert hmac_sha256(key, data).hex() == expected

    def test_rfc4231_case2(self):
        assert hmac_sha256(b"Jefe", b"what do ya want for nothing?").hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")

    def test_rfc4231_long_key(self):
        # keys longer than the block size are hashed first
        key = b"\xaa" * 131
        data = b"Test Using Larger Than Block-Size Key - Hash Key First"
        expected = ("60e431591ee0b67f0d8a26aacbf5b77f"
                    "8e0bc6213728c5140546040f0ee37f54")
        assert hmac_sha256(key, data).hex() == expected


class TestAgainstStdlib:
    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=200), st.binary(max_size=1000))
    def test_oneshot(self, key, data):
        assert hmac_sha256(key, data) == stdhmac.new(key, data, hashlib.sha256).digest()

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=100), st.lists(st.binary(max_size=100), max_size=5))
    def test_streaming(self, key, chunks):
        ours = HMAC(key)
        theirs = stdhmac.new(key, digestmod=hashlib.sha256)
        for chunk in chunks:
            ours.update(chunk)
            theirs.update(chunk)
        assert ours.digest() == theirs.digest()


class TestStreamingSemantics:
    def test_copy_independent(self):
        h = HMAC(b"key", b"prefix")
        clone = h.copy()
        h.update(b"-more")
        assert clone.digest() == hmac_sha256(b"key", b"prefix")
        assert h.digest() == hmac_sha256(b"key", b"prefix-more")

    def test_hexdigest(self):
        assert HMAC(b"k", b"m").hexdigest() == hmac_sha256(b"k", b"m").hex()


class TestVerify:
    def test_accepts_valid(self):
        tag = hmac_sha256(b"k", b"payload")
        assert verify_hmac(b"k", b"payload", tag)

    def test_rejects_bad_tag(self):
        tag = bytearray(hmac_sha256(b"k", b"payload"))
        tag[0] ^= 1
        assert not verify_hmac(b"k", b"payload", bytes(tag))

    def test_rejects_wrong_key(self):
        tag = hmac_sha256(b"k", b"payload")
        assert not verify_hmac(b"K", b"payload", tag)
