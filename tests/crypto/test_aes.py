"""AES block cipher: FIPS-197 vectors and oracle cross-check."""

import os

import pytest
from cryptography.hazmat.primitives.ciphers import Cipher, algorithms
from cryptography.hazmat.primitives.ciphers import modes as cmodes
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, INV_SBOX, SBOX
from repro.errors import InvalidKeyError

PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")

# FIPS-197 appendix C vectors
FIPS = [
    ("000102030405060708090a0b0c0d0e0f",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"),
]


class TestSbox:
    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox(self):
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x

    def test_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED


class TestFipsVectors:
    @pytest.mark.parametrize("key_hex,ct_hex", FIPS)
    def test_encrypt(self, key_hex, ct_hex):
        assert AES(bytes.fromhex(key_hex)).encrypt_block(PLAIN).hex() == ct_hex

    @pytest.mark.parametrize("key_hex,ct_hex", FIPS)
    def test_decrypt(self, key_hex, ct_hex):
        assert AES(bytes.fromhex(key_hex)).decrypt_block(bytes.fromhex(ct_hex)) == PLAIN


class TestOracle:
    @pytest.mark.parametrize("key_size", [16, 24, 32])
    def test_random_blocks_vs_cryptography(self, key_size):
        for _ in range(10):
            key = os.urandom(key_size)
            block = os.urandom(16)
            enc = Cipher(algorithms.AES(key), cmodes.ECB()).encryptor()
            expected = enc.update(block) + enc.finalize()
            ours = AES(key)
            assert ours.encrypt_block(block) == expected
            assert ours.decrypt_block(expected) == block


class TestRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    def test_decrypt_inverts_encrypt(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestErrors:
    @pytest.mark.parametrize("n", [0, 15, 17, 20, 33])
    def test_bad_key_sizes(self, n):
        with pytest.raises(InvalidKeyError):
            AES(b"k" * n)

    def test_bad_block_sizes(self):
        cipher = AES(b"k" * 16)
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"short")
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"x" * 17)

    def test_rounds_by_key_size(self):
        assert AES(b"k" * 16).rounds == 10
        assert AES(b"k" * 24).rounds == 12
        assert AES(b"k" * 32).rounds == 14
