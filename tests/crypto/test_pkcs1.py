"""PKCS#1 paddings: roundtrips, oracle interop, malleability rejection."""

import pytest
from cryptography.hazmat.primitives import hashes as chashes
from cryptography.hazmat.primitives.asymmetric import padding as cpad
from cryptography.hazmat.primitives.asymmetric import rsa as crsa
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import pkcs1
from repro.crypto.drbg import HmacDrbg
from repro.errors import DecryptionError, InvalidSignatureError


def _oracle_keys(kp):
    priv = crsa.RSAPrivateNumbers(
        p=kp.private.p, q=kp.private.q, d=kp.private.d,
        dmp1=kp.private.dp, dmq1=kp.private.dq, iqmp=kp.private.q_inv,
        public_numbers=crsa.RSAPublicNumbers(kp.public.e, kp.public.n),
    ).private_key()
    return priv, priv.public_key()


class TestMgf1:
    def test_length(self):
        assert len(pkcs1.mgf1(b"seed", 100)) == 100
        assert pkcs1.mgf1(b"seed", 0) == b""

    def test_deterministic_prefix_free(self):
        long = pkcs1.mgf1(b"seed", 100)
        short = pkcs1.mgf1(b"seed", 50)
        assert long[:50] == short


class TestEncryptV15:
    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=53))
    def test_roundtrip(self, message):
        from tests.conftest import cached_keypair
        kp = cached_keypair(512, "a")
        ct = pkcs1.encrypt_v15(kp.public, message, drbg=HmacDrbg(b"r"))
        assert pkcs1.decrypt_v15(kp.private, ct) == message

    def test_interop_decrypt_oracle_ciphertext(self, kp1024):
        _, opub = _oracle_keys(kp1024)
        ct = opub.encrypt(b"oracle encrypted", cpad.PKCS1v15())
        assert pkcs1.decrypt_v15(kp1024.private, ct) == b"oracle encrypted"

    def test_oracle_decrypts_ours(self, kp1024):
        opriv, _ = _oracle_keys(kp1024)
        ct = pkcs1.encrypt_v15(kp1024.public, b"ours encrypted")
        assert opriv.decrypt(ct, cpad.PKCS1v15()) == b"ours encrypted"

    def test_too_long_rejected(self, kp512):
        with pytest.raises(ValueError):
            pkcs1.encrypt_v15(kp512.public, b"x" * 54)

    def test_wrong_length_ciphertext(self, kp512):
        with pytest.raises(DecryptionError):
            pkcs1.decrypt_v15(kp512.private, b"x" * 63)

    def test_wrong_key_fails(self, kp512, kp512_b):
        ct = pkcs1.encrypt_v15(kp512.public, b"secret")
        with pytest.raises(DecryptionError):
            pkcs1.decrypt_v15(kp512_b.private, ct)


class TestEncryptOaep:
    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=62))
    def test_roundtrip(self, message):
        from tests.conftest import cached_keypair
        kp = cached_keypair(1024, "a")
        ct = pkcs1.encrypt_oaep(kp.public, message, drbg=HmacDrbg(b"r"))
        assert pkcs1.decrypt_oaep(kp.private, ct) == message

    def test_label_binding(self, kp1024):
        ct = pkcs1.encrypt_oaep(kp1024.public, b"msg", label=b"context-A")
        assert pkcs1.decrypt_oaep(kp1024.private, ct, label=b"context-A") == b"msg"
        with pytest.raises(DecryptionError):
            pkcs1.decrypt_oaep(kp1024.private, ct, label=b"context-B")

    def test_interop_with_oracle(self, kp1024):
        opriv, opub = _oracle_keys(kp1024)
        oaep = cpad.OAEP(mgf=cpad.MGF1(chashes.SHA256()),
                         algorithm=chashes.SHA256(), label=None)
        ct = opub.encrypt(b"from oracle", oaep)
        assert pkcs1.decrypt_oaep(kp1024.private, ct) == b"from oracle"
        ct2 = pkcs1.encrypt_oaep(kp1024.public, b"from ours")
        assert opriv.decrypt(ct2, oaep) == b"from ours"

    def test_too_long_rejected(self, kp1024):
        with pytest.raises(ValueError):
            pkcs1.encrypt_oaep(kp1024.public, b"x" * 63)

    def test_randomized(self, kp1024):
        a = pkcs1.encrypt_oaep(kp1024.public, b"same message")
        b = pkcs1.encrypt_oaep(kp1024.public, b"same message")
        assert a != b

    def test_tampered_ciphertext_rejected(self, kp1024):
        ct = bytearray(pkcs1.encrypt_oaep(kp1024.public, b"msg"))
        ct[-1] ^= 1
        with pytest.raises(DecryptionError):
            pkcs1.decrypt_oaep(kp1024.private, bytes(ct))


class TestSignV15:
    def test_roundtrip(self, kp512):
        sig = pkcs1.sign_v15(kp512.private, b"message")
        pkcs1.verify_v15(kp512.public, b"message", sig)

    def test_deterministic(self, kp512):
        assert pkcs1.sign_v15(kp512.private, b"m") == pkcs1.sign_v15(kp512.private, b"m")

    def test_oracle_verifies_ours(self, kp1024):
        _, opub = _oracle_keys(kp1024)
        sig = pkcs1.sign_v15(kp1024.private, b"interop")
        opub.verify(sig, b"interop", cpad.PKCS1v15(), chashes.SHA256())

    def test_we_verify_oracle(self, kp1024):
        opriv, _ = _oracle_keys(kp1024)
        sig = opriv.sign(b"interop", cpad.PKCS1v15(), chashes.SHA256())
        pkcs1.verify_v15(kp1024.public, b"interop", sig)

    def test_modified_message_rejected(self, kp512):
        sig = pkcs1.sign_v15(kp512.private, b"message")
        with pytest.raises(InvalidSignatureError):
            pkcs1.verify_v15(kp512.public, b"messagE", sig)

    def test_modified_signature_rejected(self, kp512):
        sig = bytearray(pkcs1.sign_v15(kp512.private, b"message"))
        sig[0] ^= 1
        with pytest.raises(InvalidSignatureError):
            pkcs1.verify_v15(kp512.public, b"message", bytes(sig))

    def test_wrong_key_rejected(self, kp512, kp512_b):
        sig = pkcs1.sign_v15(kp512.private, b"message")
        with pytest.raises(InvalidSignatureError):
            pkcs1.verify_v15(kp512_b.public, b"message", sig)

    def test_wrong_length_rejected(self, kp512):
        with pytest.raises(InvalidSignatureError):
            pkcs1.verify_v15(kp512.public, b"message", b"\x01" * 63)


class TestSignPss:
    def test_roundtrip(self, kp512):
        sig = pkcs1.sign_pss(kp512.private, b"message", drbg=HmacDrbg(b"s"))
        pkcs1.verify_pss(kp512.public, b"message", sig)

    def test_randomized(self, kp1024):
        a = pkcs1.sign_pss(kp1024.private, b"m")
        b = pkcs1.sign_pss(kp1024.private, b"m")
        assert a != b
        pkcs1.verify_pss(kp1024.public, b"m", a)
        pkcs1.verify_pss(kp1024.public, b"m", b)

    def test_oracle_verifies_ours(self, kp1024):
        _, opub = _oracle_keys(kp1024)
        sig = pkcs1.sign_pss(kp1024.private, b"interop")
        opub.verify(sig, b"interop",
                    cpad.PSS(mgf=cpad.MGF1(chashes.SHA256()),
                             salt_length=cpad.PSS.AUTO), chashes.SHA256())

    def test_we_verify_oracle(self, kp1024):
        opriv, _ = _oracle_keys(kp1024)
        sig = opriv.sign(b"interop",
                         cpad.PSS(mgf=cpad.MGF1(chashes.SHA256()),
                                  salt_length=32), chashes.SHA256())
        pkcs1.verify_pss(kp1024.public, b"interop", sig)

    def test_zero_salt_allowed(self, kp512):
        sig = pkcs1.sign_pss(kp512.private, b"m", salt_len=0)
        pkcs1.verify_pss(kp512.public, b"m", sig)

    def test_small_modulus_adapts_salt(self, kp512):
        # 512-bit modulus cannot hold a 32-byte salt; default adapts
        sig = pkcs1.sign_pss(kp512.private, b"m")
        pkcs1.verify_pss(kp512.public, b"m", sig)

    def test_tampered_rejected(self, kp512):
        sig = bytearray(pkcs1.sign_pss(kp512.private, b"m"))
        sig[-1] ^= 1
        with pytest.raises(InvalidSignatureError):
            pkcs1.verify_pss(kp512.public, b"m", bytes(sig))

    def test_wrong_message_rejected(self, kp512):
        sig = pkcs1.sign_pss(kp512.private, b"m")
        with pytest.raises(InvalidSignatureError):
            pkcs1.verify_pss(kp512.public, b"other", sig)

    def test_oversized_salt_rejected(self, kp512):
        with pytest.raises(ValueError):
            pkcs1.sign_pss(kp512.private, b"m", salt_len=64)
