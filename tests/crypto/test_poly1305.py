"""Poly1305 one-time MAC: RFC 8439 vectors and edge cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.poly1305 import poly1305_mac


class TestVectors:
    def test_rfc8439_section_2_5_2(self):
        key = bytes.fromhex(
            "85d6be7857556d337f4452fe42d506a8"
            "0103808afb0db2fd4abff6af4149f51b")
        tag = poly1305_mac(key, b"Cryptographic Forum Research Group")
        assert tag == bytes.fromhex("a8061dc1305136c6c22b8baf0c0127a9")

    def test_zero_key_zero_message(self):
        # r = 0 clamps to 0, so the tag is just s = 0
        assert poly1305_mac(b"\x00" * 32, b"anything") == b"\x00" * 16

    def test_empty_message(self):
        key = bytes(range(32))
        tag = poly1305_mac(key, b"")
        assert len(tag) == 16
        # with no blocks the accumulator stays 0; tag == s
        assert tag == key[16:]


class TestProperties:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            poly1305_mac(b"short", b"msg")

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=32, max_size=32), st.binary(max_size=500))
    def test_deterministic(self, key, msg):
        assert poly1305_mac(key, msg) == poly1305_mac(key, msg)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=1, max_size=200))
    def test_message_sensitivity(self, key, msg):
        # flipping one bit must change the tag (w.h.p.; r=0 keys excluded)
        if key[:16] == b"\x00" * 16:
            return
        tampered = bytes([msg[0] ^ 1]) + msg[1:]
        assert poly1305_mac(key, msg) != poly1305_mac(key, tampered)

    def test_block_boundary_lengths(self):
        key = bytes(range(32))
        tags = {poly1305_mac(key, b"a" * n) for n in (15, 16, 17, 31, 32, 33)}
        assert len(tags) == 6  # all distinct
