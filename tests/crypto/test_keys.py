"""Key serialization."""

import pytest

from repro.crypto import keys as keymod
from repro.crypto.rsa import KeyPair
from repro.errors import InvalidKeyError


class TestPublicKeyText:
    def test_roundtrip(self, kp512):
        text = keymod.public_key_to_text(kp512.public)
        assert keymod.public_key_from_text(text) == kp512.public

    def test_compact_json(self, kp512):
        text = keymod.public_key_to_text(kp512.public)
        assert "\n" not in text and " " not in text

    def test_not_json_rejected(self):
        with pytest.raises(InvalidKeyError):
            keymod.public_key_from_text("not json at all")

    def test_non_object_rejected(self):
        with pytest.raises(InvalidKeyError):
            keymod.public_key_from_text("[1,2,3]")


class TestPrivateKeyDict:
    def test_roundtrip_recomputes_crt(self, kp512):
        data = keymod.private_key_to_dict(kp512.private)
        restored = keymod.private_key_from_dict(data)
        assert restored == kp512.private
        assert restored.dp == kp512.private.dp
        assert restored.q_inv == kp512.private.q_inv

    def test_wrong_kty_rejected(self, kp512):
        data = keymod.private_key_to_dict(kp512.private)
        data["kty"] = "RSA"
        with pytest.raises(InvalidKeyError):
            keymod.private_key_from_dict(data)

    def test_missing_field_rejected(self, kp512):
        data = keymod.private_key_to_dict(kp512.private)
        del data["q"]
        with pytest.raises(InvalidKeyError):
            keymod.private_key_from_dict(data)


class TestKeypairDict:
    def test_roundtrip(self, kp512):
        restored = keymod.keypair_from_dict(keymod.keypair_to_dict(kp512))
        assert restored == kp512

    def test_mismatched_halves_rejected(self, kp512, kp512_b):
        data = keymod.keypair_to_dict(
            KeyPair(public=kp512_b.public, private=kp512.private))
        with pytest.raises(InvalidKeyError):
            keymod.keypair_from_dict(data)


class TestFingerprints:
    def test_hex_roundtrip(self, kp512):
        text = keymod.fingerprint_hex(kp512.public)
        assert keymod.fingerprint_from_hex(text) == kp512.public.fingerprint()
