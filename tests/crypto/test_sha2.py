"""SHA-256/224 from scratch: FIPS vectors, hashlib oracle, streaming."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha2 import SHA224, SHA256, get_backend, set_backend, sha224, sha256

# FIPS 180-4 / NIST example vectors
VECTORS_256 = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"),
]


class TestVectors:
    @pytest.mark.parametrize("msg,hex_digest", VECTORS_256)
    def test_fips_vectors(self, msg, hex_digest):
        assert SHA256(msg).hexdigest() == hex_digest

    def test_million_a(self):
        h = SHA256()
        for _ in range(1000):
            h.update(b"a" * 1000)
        assert h.hexdigest() == (
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")

    def test_sha224_vector(self):
        assert SHA224(b"abc").hexdigest() == (
            "23097d223405d8228642a477bda255b32aadbce4bda0b3f7e36c9da7")


class TestAgainstHashlib:
    @pytest.mark.parametrize("n", [0, 1, 54, 55, 56, 57, 63, 64, 65, 127, 128, 1000])
    def test_boundary_lengths(self, n):
        data = bytes(range(256)) * (n // 256 + 1)
        data = data[:n]
        assert SHA256(data).digest() == hashlib.sha256(data).digest()
        assert SHA224(data).digest() == hashlib.sha224(data).digest()

    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=2048))
    def test_random(self, data):
        assert SHA256(data).digest() == hashlib.sha256(data).digest()


class TestStreaming:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(max_size=200), max_size=8))
    def test_chunked_equals_oneshot(self, chunks):
        h = SHA256()
        for chunk in chunks:
            h.update(chunk)
        assert h.digest() == hashlib.sha256(b"".join(chunks)).digest()

    def test_digest_does_not_finalize(self):
        h = SHA256(b"part1")
        first = h.digest()
        assert h.digest() == first  # idempotent
        h.update(b"part2")
        assert h.digest() == hashlib.sha256(b"part1part2").digest()

    def test_copy_is_independent(self):
        h = SHA256(b"shared")
        clone = h.copy()
        h.update(b"x")
        assert clone.digest() == hashlib.sha256(b"shared").digest()
        assert h.digest() == hashlib.sha256(b"sharedx").digest()

    def test_update_rejects_str(self):
        with pytest.raises(TypeError):
            SHA256().update("text")  # type: ignore[arg-type]


class TestBackends:
    def test_default_is_accelerated(self):
        assert get_backend() == "accelerated"

    def test_backends_agree(self):
        data = b"backend agreement check"
        try:
            set_backend("pure")
            pure = sha256(data), sha224(data)
            set_backend("accelerated")
            accel = sha256(data), sha224(data)
        finally:
            set_backend("accelerated")
        assert pure == accel

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_backend("gpu")
