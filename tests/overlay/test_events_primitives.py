"""Event bus and the primitive catalogue."""

import pytest

from repro.errors import OverlayError
from repro.overlay.events import EVENT_CATALOGUE, EventBus
from repro.overlay.primitives import CATALOGUE, catalogue_by_category, secure_variants


class TestEventBus:
    def test_subscribe_emit(self):
        bus = EventBus()
        got = []
        bus.subscribe("message_received", lambda **kw: got.append(kw))
        bus.emit("message_received", text="hi")
        assert got == [{"text": "hi"}]

    def test_unknown_event_rejected(self):
        bus = EventBus()
        with pytest.raises(OverlayError):
            bus.emit("not_an_event")
        with pytest.raises(OverlayError):
            bus.subscribe("not_an_event", lambda: None)

    def test_non_strict_mode(self):
        bus = EventBus(strict=False)
        bus.emit("anything_goes", x=1)
        assert bus.events_named("anything_goes") == [{"x": 1}]

    def test_unsubscribe(self):
        bus = EventBus()
        got = []
        fn = lambda **kw: got.append(1)
        bus.subscribe("connected", fn)
        bus.unsubscribe("connected", fn)
        bus.emit("connected")
        assert got == []

    def test_history(self):
        bus = EventBus()
        bus.emit("connected", broker="b")
        bus.emit("logged_in", username="u", groups=[])
        assert bus.events_named("connected") == [{"broker": "b"}]
        bus.clear_history()
        assert bus.history == []

    def test_multiple_listeners_all_called(self):
        bus = EventBus()
        got = []
        bus.subscribe("logged_out", lambda **kw: got.append("a"))
        bus.subscribe("logged_out", lambda **kw: got.append("b"))
        bus.emit("logged_out", username="x")
        assert got == ["a", "b"]

    def test_catalogue_covers_core_lifecycle(self):
        for name in ("connected", "logged_in", "message_received",
                     "secure_message_received", "message_rejected",
                     "broker_rejected", "credential_issued"):
            assert name in EVENT_CATALOGUE


class TestPrimitiveCatalogue:
    def test_plain_primitives_registered(self):
        for name in ("connect", "login", "logout", "send_msg_peer",
                     "send_msg_peer_group", "publish_file", "request_file",
                     "create_group", "join_group", "submit_task"):
            assert name in CATALOGUE, name
            assert not CATALOGUE[name].secure

    def test_secure_primitives_registered(self):
        secure = secure_variants()
        for name in ("secure_connect", "secure_login", "secure_msg_peer",
                     "secure_msg_peer_group", "secure_publish_file",
                     "secure_request_file", "secure_submit_task"):
            assert name in secure, name

    def test_categories(self):
        by_cat = catalogue_by_category()
        assert set(by_cat) == {"discovery", "messenger", "group", "file",
                               "executable"}
        assert any(i.name == "secure_msg_peer" for i in by_cat["messenger"])

    def test_docs_captured(self):
        assert CATALOGUE["secure_login"].doc.startswith("secureLogin")

    def test_invocation_counted(self, joined_plain_world):
        world = joined_plain_world
        world.alice.list_groups()
        assert world.alice.metrics.count("primitive.list_groups") == 1
