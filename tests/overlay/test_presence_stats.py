"""Presence heartbeats, stale purging, stats advertisements."""

import pytest

from repro.overlay import PresenceSweeper
from repro.overlay.stats import build_stats_advertisement, publish_stats
from repro.sim import Scheduler


class TestPresence:
    def test_heartbeat_refreshes_last_seen(self, joined_plain_world):
        world = joined_plain_world
        sched = Scheduler(world.net.clock)
        world.alice.start_presence(sched, interval=10.0)
        before = world.broker.connected[str(world.alice.peer_id)].last_seen
        sched.run_for(35.0)
        after = world.broker.connected[str(world.alice.peer_id)].last_seen
        assert after > before

    def test_silent_peer_purged(self, joined_plain_world):
        world = joined_plain_world
        sched = Scheduler(world.net.clock)
        world.alice.start_presence(sched, interval=10.0)
        PresenceSweeper(world.broker, sched, max_age=25.0, interval=10.0)
        sched.run_for(120.0)
        assert str(world.alice.peer_id) in world.broker.connected
        assert str(world.bob.peer_id) not in world.broker.connected

    def test_purged_peer_leaves_groups(self, joined_plain_world):
        world = joined_plain_world
        world.broker.connected[str(world.bob.peer_id)].last_seen = -1000.0
        purged = world.broker.purge_stale(100.0)
        assert str(world.bob.peer_id) in purged
        group = world.broker.groups.get("students")
        assert not group.has_member(world.bob.peer_id)

    def test_presence_advertisement_cached(self, joined_plain_world):
        world = joined_plain_world
        sched = Scheduler(world.net.clock)
        world.alice.start_presence(sched, interval=5.0)
        sched.run_for(6.0)
        hits = world.broker.control.cache.find(
            "PresenceAdvertisement", peer_id=str(world.alice.peer_id))
        assert len(hits) == 1

    def test_double_start_rejected(self, joined_plain_world):
        from repro.errors import PrimitiveError

        world = joined_plain_world
        sched = Scheduler(world.net.clock)
        world.alice.start_presence(sched)
        with pytest.raises(PrimitiveError):
            world.alice.start_presence(sched)

    def test_stop_presence(self, joined_plain_world):
        world = joined_plain_world
        sched = Scheduler(world.net.clock)
        world.alice.start_presence(sched, interval=5.0)
        world.alice.stop_presence()
        before = world.broker.connected[str(world.alice.peer_id)].last_seen
        sched.run_for(30.0)
        assert world.broker.connected[str(world.alice.peer_id)].last_seen == before

    def test_sweeper_cancel(self, joined_plain_world):
        world = joined_plain_world
        sched = Scheduler(world.net.clock)
        sweeper = PresenceSweeper(world.broker, sched, max_age=5.0, interval=5.0)
        sweeper.cancel()
        sched.run_for(60.0)
        # nobody beats, but the sweeper was cancelled: all still connected
        assert len(world.broker.connected) == 3


class TestStats:
    def test_stats_reflect_primitives(self, joined_plain_world):
        world = joined_plain_world
        world.alice.send_msg_peer(str(world.bob.peer_id), "students", "1")
        world.alice.send_msg_peer(str(world.bob.peer_id), "students", "2")
        world.alice.publish_file("students", "f", b"x")
        adv = build_stats_advertisement(world.alice, "students")
        assert adv.messages_sent == 2
        assert adv.files_shared == 1

    def test_publish_stats_indexes_on_broker(self, joined_plain_world):
        world = joined_plain_world
        assert publish_stats(world.alice) == 1
        hits = world.broker.control.cache.find(
            "StatsAdvertisement", peer_id=str(world.alice.peer_id))
        assert len(hits) == 1
