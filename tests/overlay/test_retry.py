"""Retry / timeout / circuit-breaker policies and the result API.

Covers the robustness layer end to end:

* backoff arithmetic and virtual-clock timing,
* timeout budgets (``PrimitiveTimeoutError``),
* breaker state machine (closed -> open -> half-open -> closed/open),
* ``PrimitiveResult`` compatibility shims,
* per-recipient isolation in group sends,
* broker crash-restart: automatic re-login on a *fresh* sid, with the
  stale pre-crash sid rejected by the replay guard (the acceptance
  scenario in ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import (
    CircuitOpenError,
    NetworkError,
    NotConnectedError,
    PrimitiveError,
    PrimitiveTimeoutError,
    SecurityError,
)
from repro.overlay.policy import (
    NO_RETRY,
    CircuitBreaker,
    RetryPolicy,
    Timeout,
    run_with_retry,
)
from repro.overlay.results import PrimitiveResult
from repro.sim import FaultPlan, FrameLoss, VirtualClock


@pytest.fixture()
def fresh_obs():
    saved = (obs.get_registry(), obs.get_events())
    registry = obs.set_registry(obs.Registry(enabled=True))
    obs.set_events(obs.ProtocolEvents(registry=registry))
    try:
        yield registry
    finally:
        obs.set_registry(saved[0])
        obs.set_events(saved[1])


class Flaky:
    """Callable failing with NetworkError the first ``n`` times."""

    def __init__(self, failures: int):
        self.remaining = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise NetworkError("injected transport failure")
        return "payload"


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        p = RetryPolicy(max_attempts=8, base_delay_s=0.1, multiplier=2.0,
                        max_delay_s=0.5, jitter=0.0)
        assert [p.delay(n) for n in (1, 2, 3, 4, 5)] == [
            0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_uses_the_supplied_draw(self):
        p = RetryPolicy(base_delay_s=0.1, jitter=0.1)
        assert p.delay(1, draw=lambda: 1.0) == pytest.approx(0.11)
        assert p.delay(1, draw=lambda: 0.0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            Timeout(0.0)


class TestRunWithRetry:
    def test_recovers_and_counts_attempts(self):
        clock = VirtualClock()
        result, attempts = run_with_retry(
            Flaky(2), clock=clock,
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.1, jitter=0.0))
        assert (result, attempts) == ("payload", 3)
        # two backoffs were waited out on the virtual clock: 0.1 + 0.2
        assert clock.now == pytest.approx(0.3)

    def test_exhaustion_reraises_with_attempt_count(self):
        flaky = Flaky(99)
        with pytest.raises(NetworkError) as err:
            run_with_retry(flaky, clock=VirtualClock(),
                           retry=RetryPolicy(max_attempts=3, jitter=0.0))
        assert err.value.attempts == 3
        assert flaky.calls == 3

    def test_non_transport_errors_propagate_untouched(self):
        def boom():
            raise PrimitiveError("logic bug, do not retry")

        with pytest.raises(PrimitiveError):
            run_with_retry(boom, clock=VirtualClock(),
                           retry=RetryPolicy(max_attempts=4))

    def test_timeout_budget_cuts_the_retry_loop(self):
        clock = VirtualClock()
        with pytest.raises(PrimitiveTimeoutError) as err:
            run_with_retry(
                Flaky(99), clock=clock,
                retry=RetryPolicy(max_attempts=10, base_delay_s=1.0, jitter=0.0),
                timeout=Timeout(2.5))
        assert err.value.attempts >= 1
        assert clock.now <= 2.5   # never waits past the deadline

    def test_retries_are_recorded(self, fresh_obs):
        run_with_retry(Flaky(2), clock=VirtualClock(),
                       retry=RetryPolicy(max_attempts=4, jitter=0.0),
                       label="probe")
        assert fresh_obs.count("overlay.probe.retries") == 2
        assert fresh_obs.count("events.on_retry") == 2


class TestCircuitBreaker:
    def make(self, clock=None):
        clock = clock or VirtualClock()
        return clock, CircuitBreaker(clock, failure_threshold=3,
                                     reset_timeout_s=10.0, name="test")

    def test_opens_after_threshold_and_fails_fast(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_half_open_probe_success_closes(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.before_call()                      # admitted as the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.consecutive_failures == 0

    def test_half_open_probe_failure_reopens(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_failure()                   # the probe failed
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_transitions_are_observable(self, fresh_obs):
        states = []
        obs.on("on_breaker_state", lambda **kw: states.append(kw["state"]))
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_success()
        assert states == ["open", "half_open", "closed"]
        assert fresh_obs.count("policy.breaker.transitions") == 3

    def test_one_retried_call_counts_one_breaker_failure(self):
        """Retries inside one invocation are not separate breaker hits."""
        clock, breaker = self.make()
        with pytest.raises(NetworkError):
            run_with_retry(Flaky(99), clock=clock,
                           retry=RetryPolicy(max_attempts=4, jitter=0.0),
                           breaker=breaker)
        assert breaker.consecutive_failures == 1
        assert breaker.state == CircuitBreaker.CLOSED


class TestPrimitiveResult:
    def test_eq_delegates_to_value(self):
        assert PrimitiveResult(ok=True, value=2) == 2
        assert PrimitiveResult(ok=True, value=b"data") == b"data"
        assert PrimitiveResult(ok=True, value=2) != 3

    def test_sequence_shims_delegate_to_value(self):
        r = PrimitiveResult(ok=True, value=b"abc")
        assert len(r) == 3 and r[0] == ord("a") and bytes(r) == b"abc"

    def test_unwrap(self):
        assert PrimitiveResult(ok=True, value="v").unwrap() == "v"
        exc = NetworkError("lost")
        with pytest.raises(NetworkError):
            PrimitiveResult(ok=False, error=exc).unwrap()


class TestMessengerRetries:
    def test_send_msg_peer_retries_through_loss(self, joined_plain_world):
        w = joined_plain_world
        bob = str(w.bob.peer_id)
        w.alice.send_msg_peer(bob, "students", "warm the pipe cache")
        injector = FaultPlan(FrameLoss(0.4)).install(w.net, seed=b"retry-test")
        results = [w.alice.send_msg_peer(bob, "students", f"msg {i}")
                   for i in range(20)]
        injector.uninstall()
        delivered = sum(1 for r in results if r.ok)
        assert delivered == 20      # 4 attempts beat 40% loss, every time
        assert any(r.attempts > 1 and r.degraded for r in results)

    def test_send_msg_peer_reports_failure_without_raising(self, joined_plain_world):
        w = joined_plain_world
        bob = str(w.bob.peer_id)
        w.alice.send_msg_peer(bob, "students", "warm the pipe cache")
        injector = FaultPlan(FrameLoss(1.0)).install(w.net)
        result = w.alice.send_msg_peer(bob, "students", "doomed",
                                       retry=RetryPolicy(max_attempts=2))
        injector.uninstall()
        assert not result.ok and result.attempts == 2 and result.error is not None

    def test_group_send_isolates_unreachable_member(self, joined_plain_world):
        w = joined_plain_world
        # alice+bob share "students"; warm alice's cache, then take bob down
        w.alice.send_msg_peer(str(w.bob.peer_id), "students", "warm-up")
        w.net.unregister("peer:bob")
        result = w.alice.send_msg_peer_group("students", "anyone there?",
                                             retry=NO_RETRY)
        assert result.degraded and not result.ok
        assert result == 0          # nobody else in the group to reach

    def test_per_call_timeout_override(self, joined_plain_world):
        w = joined_plain_world
        bob = str(w.bob.peer_id)
        w.alice.send_msg_peer(bob, "students", "warm the pipe cache")
        injector = FaultPlan(FrameLoss(1.0)).install(w.net)
        result = w.alice.send_msg_peer(
            bob, "students", "slow", retry=RetryPolicy(max_attempts=10,
                                                       base_delay_s=1.0),
            timeout=Timeout(1.5))
        injector.uninstall()
        assert not result.ok and isinstance(result.error, PrimitiveTimeoutError)

    def test_optional_filters_are_keyword_only(self, joined_plain_world):
        with pytest.raises(TypeError):
            joined_plain_world.alice.search_advertisements("PipeAdvertisement")


class TestBrokerFailover:
    def test_connect_fails_over_to_fallback(self, plain_world, fresh_obs):
        w = plain_world
        from repro.overlay.broker import Broker

        Broker(w.net, "broker:1", w.db, w.root.fork(b"br1"), name="B1")
        degraded = []
        obs.on("on_degraded", lambda **kw: degraded.append(kw))
        name = w.alice.connect("broker:ghost", fallbacks=["broker:1"],
                               retry=NO_RETRY)
        assert name == "B1" and w.alice.broker_address == "broker:1"
        assert degraded and degraded[0]["primitive"] == "connect"

    def test_connect_exhausting_all_candidates_raises(self, plain_world):
        with pytest.raises(NotConnectedError):
            plain_world.alice.connect("broker:ghost",
                                      fallbacks=["broker:ghost2"],
                                      retry=NO_RETRY)

    def test_secure_connect_never_fails_over_past_auth_failure(
            self, secure_world):
        """An impostor that answers must abort failover, not be skipped."""
        from repro.attacks import FakeBroker
        from repro.crypto.drbg import HmacDrbg

        w = secure_world
        FakeBroker(w.net, "broker:fake", HmacDrbg(b"fake"))
        with pytest.raises(SecurityError):
            w.alice.secure_connect("broker:fake", fallbacks=["broker:0"])
        assert w.alice.broker_address is None


class TestCrashRecovery:
    def test_auto_relogin_after_broker_restart(self, joined_secure_world,
                                               fresh_obs):
        w = joined_secure_world
        sids_before = w.broker.sids.issued_total
        assert len(w.broker.connected) == 3
        w.broker.restart()
        assert w.broker.connected == {}
        # next broker-backed primitive transparently re-establishes
        members = w.alice.secure_create_group("phoenix")
        assert str(w.alice.peer_id) in members
        assert str(w.alice.peer_id) in w.broker.connected
        # recovery ran a full secureConnection: exactly one fresh sid
        assert w.broker.sids.issued_total == sids_before + 1
        assert w.alice.sid is None          # and it was consumed, one-shot
        assert fresh_obs.count("events.on_degraded") == 1

    def test_plain_client_also_relogs_in(self, joined_plain_world):
        w = joined_plain_world
        w.broker.restart()
        result = w.alice.send_msg_peer_group("students", "back online?")
        assert result.ok                    # group state was re-registered

    def test_stale_precrash_sid_is_rejected_as_replay(self, secure_world,
                                                      fresh_obs):
        """The acceptance scenario: a sid minted before the crash must be
        useless after it — the restarted broker's replay guard treats it
        like any unknown sid."""
        w = secure_world
        w.alice.secure_connect("broker:0")
        assert w.alice.sid is not None      # minted pre-crash
        blocked = []
        obs.on("on_replay_blocked", lambda **kw: blocked.append(kw["kind"]))
        w.broker.restart()                  # sid store wiped with the RAM
        with pytest.raises(SecurityError):
            w.alice.secure_login("alice", "pw-a")
        assert w.broker.sids.replays_blocked == 1
        assert blocked == ["sid"]
        # a fresh handshake works fine afterwards
        w.alice.secure_connect("broker:0")
        assert w.alice.secure_login("alice", "pw-a") == ["students"]
