"""The central user database."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import DatabaseError
from repro.overlay.database import UserDatabase, _hash_password


@pytest.fixture()
def db():
    database = UserDatabase(HmacDrbg(b"db"))
    database.register_user("alice", "secret", {"g1", "g2"})
    return database


class TestRegistration:
    def test_register_and_check(self, db):
        assert db.check_credentials("alice", "secret")
        assert not db.check_credentials("alice", "wrong")
        assert not db.check_credentials("nobody", "secret")
        assert db.has_user("alice") and not db.has_user("bob")
        assert len(db) == 1

    def test_duplicate_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.register_user("alice", "x")

    def test_empty_username_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.register_user("", "x")

    def test_remove_user(self, db):
        db.remove_user("alice")
        assert not db.has_user("alice")
        with pytest.raises(DatabaseError):
            db.remove_user("alice")

    def test_password_not_stored_in_clear(self, db):
        record = db._users["alice"]
        assert b"secret" not in record.password_hash
        assert record.password_hash != _hash_password(b"\x00" * 16, "secret")

    def test_salts_differ_between_users(self, db):
        db.register_user("bob", "secret")
        assert db._users["alice"].password_hash != db._users["bob"].password_hash

    def test_set_password(self, db):
        db.set_password("alice", "new-secret")
        assert not db.check_credentials("alice", "secret")
        assert db.check_credentials("alice", "new-secret")


class TestGroups:
    def test_groups_of(self, db):
        assert db.groups_of("alice") == {"g1", "g2"}

    def test_groups_of_returns_copy(self, db):
        db.groups_of("alice").add("evil")
        assert db.groups_of("alice") == {"g1", "g2"}

    def test_assign_and_revoke(self, db):
        db.assign_group("alice", "g3")
        assert "g3" in db.groups_of("alice")
        db.revoke_group("alice", "g3")
        assert "g3" not in db.groups_of("alice")

    def test_known_groups(self, db):
        db.register_group("g9")
        assert db.known_groups() >= {"g1", "g2", "g9"}

    def test_empty_group_name_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.register_group("")

    def test_unknown_user_raises(self, db):
        with pytest.raises(DatabaseError):
            db.groups_of("ghost")


class TestSessionTracking:
    def test_active_broker_lifecycle(self, db):
        assert db.active_broker_of("alice") is None
        db.mark_active("alice", "broker:0")
        assert db.active_broker_of("alice") == "broker:0"
        db.mark_inactive("alice")
        assert db.active_broker_of("alice") is None

    def test_mark_inactive_unknown_is_noop(self, db):
        db.mark_inactive("ghost")  # must not raise
