"""The plain JXTA-Overlay protocol: discovery, group, messenger functions."""

import pytest

from repro.errors import (
    AuthenticationError,
    NotConnectedError,
    OverlayError,
    PrimitiveError,
)
from repro.jxta.messages import Message


class TestConnect:
    def test_connect_returns_broker_name(self, plain_world):
        assert plain_world.alice.connect("broker:0") == "B0"
        assert plain_world.alice.events.events_named("connected")

    def test_connect_to_nothing_fails(self, plain_world):
        with pytest.raises(NotConnectedError):
            plain_world.alice.connect("broker:ghost")
        assert plain_world.alice.broker_address is None
        assert plain_world.alice.events.events_named("connection_failed")


class TestLogin:
    def test_login_returns_groups(self, plain_world):
        plain_world.alice.connect("broker:0")
        assert plain_world.alice.login("alice", "pw-a") == ["students"]
        assert plain_world.alice.events.events_named("logged_in")

    def test_login_without_connect_rejected(self, plain_world):
        with pytest.raises(NotConnectedError):
            plain_world.alice.login("alice", "pw-a")

    def test_wrong_password_rejected(self, plain_world):
        plain_world.alice.connect("broker:0")
        with pytest.raises(AuthenticationError):
            plain_world.alice.login("alice", "nope")
        assert plain_world.alice.username is None
        assert plain_world.alice.events.events_named("login_failed")

    def test_unknown_user_rejected(self, plain_world):
        plain_world.alice.connect("broker:0")
        with pytest.raises(AuthenticationError):
            plain_world.alice.login("mallory", "x")

    def test_login_creates_group_pipes(self, joined_plain_world):
        world = joined_plain_world
        assert set(world.alice.input_pipes) == {"students"}
        # the pipe advertisement reached the broker's index
        hits = world.broker.control.cache.find(
            "PipeAdvertisement", peer_id=str(world.alice.peer_id))
        assert len(hits) == 1

    def test_login_registers_session(self, joined_plain_world):
        world = joined_plain_world
        session = world.broker.connected[str(world.alice.peer_id)]
        assert session.username == "alice"
        assert session.address == "peer:alice"

    def test_members_notified_of_join(self, plain_world):
        world = plain_world
        world.alice.connect("broker:0")
        world.alice.login("alice", "pw-a")
        world.bob.connect("broker:0")
        world.bob.login("bob", "pw-b")
        joined = world.alice.events.events_named("peer_joined_group")
        assert any(e["username"] == "bob" for e in joined)


class TestLogout:
    def test_logout_clears_state(self, joined_plain_world):
        world = joined_plain_world
        world.alice.logout()
        assert world.alice.username is None
        assert world.alice.groups == []
        assert world.alice.input_pipes == {}
        assert str(world.alice.peer_id) not in world.broker.connected

    def test_logout_notifies_members(self, joined_plain_world):
        world = joined_plain_world
        world.alice.logout()
        left = world.bob.events.events_named("peer_left_group")
        assert any(e["peer_id"] == str(world.alice.peer_id) for e in left)

    def test_logout_without_login_rejected(self, plain_world):
        plain_world.alice.connect("broker:0")
        with pytest.raises(NotConnectedError):
            plain_world.alice.logout()


class TestPeerStatus:
    def test_online_peer(self, joined_plain_world):
        world = joined_plain_world
        status = world.alice.peer_status(str(world.bob.peer_id))
        assert status["online"] and status["username"] == "bob"

    def test_offline_peer(self, joined_plain_world):
        status = joined_plain_world.alice.peer_status("urn:jxta:uuid-" + "00" * 16)
        assert not status["online"]


class TestMessaging:
    def test_send_and_receive(self, joined_plain_world):
        world = joined_plain_world
        got = []
        world.bob.events.subscribe("message_received", lambda **kw: got.append(kw))
        assert world.alice.send_msg_peer(str(world.bob.peer_id), "students",
                                         "hi").ok
        assert got[0]["text"] == "hi"
        assert got[0]["from_user"] == "alice"
        assert got[0]["group"] == "students"

    def test_group_send_counts_members(self, joined_plain_world):
        world = joined_plain_world
        assert world.alice.send_msg_peer_group("students", "all") == 1

    def test_non_member_group_rejected(self, joined_plain_world):
        world = joined_plain_world
        with pytest.raises(PrimitiveError):
            world.alice.send_msg_peer(str(world.carol.peer_id), "teachers", "x")

    def test_requires_login(self, plain_world):
        with pytest.raises(NotConnectedError):
            plain_world.alice.send_msg_peer("urn:jxta:uuid-" + "00" * 16,
                                            "students", "x")


class TestGroups:
    def test_create_join_leave(self, joined_plain_world):
        world = joined_plain_world
        world.carol.create_group("staff-room", "desc")
        assert "staff-room" in world.carol.groups
        assert "staff-room" in world.carol.list_groups()

        members = world.bob.join_group("staff-room")
        assert str(world.carol.peer_id) in members
        assert len(world.carol.group_members("staff-room")) == 2

        world.bob.leave_group("staff-room")
        assert len(world.carol.group_members("staff-room")) == 1
        assert "staff-room" not in world.bob.groups

    def test_duplicate_group_rejected(self, joined_plain_world):
        world = joined_plain_world
        world.carol.create_group("staff")
        with pytest.raises(OverlayError):
            world.alice.create_group("staff")

    def test_join_unknown_group_rejected(self, joined_plain_world):
        with pytest.raises(OverlayError):
            joined_plain_world.alice.join_group("nonexistent")

    def test_group_messaging_after_join(self, joined_plain_world):
        world = joined_plain_world
        world.carol.create_group("mixed")
        world.alice.join_group("mixed")
        got = []
        world.carol.events.subscribe("message_received", lambda **kw: got.append(kw))
        assert world.alice.send_msg_peer(str(world.carol.peer_id), "mixed",
                                         "x").ok
        assert got

    def test_group_members_unknown_group(self, joined_plain_world):
        with pytest.raises(OverlayError):
            joined_plain_world.alice.group_members("nope")


class TestQueries:
    def test_search_by_type_and_group(self, joined_plain_world):
        world = joined_plain_world
        advs = world.alice.search_advertisements(
            adv_type="PipeAdvertisement", group="students")
        assert len(advs) == 2  # alice + bob

    def test_search_caches_locally(self, joined_plain_world):
        world = joined_plain_world
        world.alice.search_advertisements(adv_type="PipeAdvertisement",
                                          group="students")
        assert len(world.alice.control.cache.find("PipeAdvertisement")) >= 2


class TestBrokerFunctions:
    def test_unauthenticated_publish_rejected(self, plain_world):
        world = plain_world
        world.alice.connect("broker:0")
        req = Message("publish_adv")
        from repro.jxta.advertisements import PeerAdvertisement

        req.add_xml("adv", PeerAdvertisement(
            peer_id=world.alice.peer_id, name="x", address="y").to_element())
        resp = world.alice.control.endpoint.request("broker:0", req)
        assert resp.msg_type == "publish_fail"

    def test_publish_peer_id_mismatch_rejected(self, joined_plain_world):
        world = joined_plain_world
        from repro.jxta.advertisements import PeerAdvertisement

        req = Message("publish_adv")
        req.add_xml("adv", PeerAdvertisement(
            peer_id=world.bob.peer_id, name="x", address="y").to_element())
        resp = world.alice.control.endpoint.request("broker:0", req)
        assert resp.msg_type == "publish_fail"

    def test_broker_link_sync(self, joined_plain_world):
        """A peer on one federated broker is discoverable from the other."""
        from repro.overlay import Broker

        world = joined_plain_world
        other = Broker(world.net, "broker:1", world.db,
                       world.root.fork(b"br2"), name="B1")
        world.broker.link_broker(other)
        world.db.register_user("dave", "pw-d", {"students"})
        from repro.overlay import ClientPeer

        dave = ClientPeer(world.net, "peer:dave", world.root.fork(b"da"))
        dave.connect("broker:1")
        dave.login("dave", "pw-d")
        # Cross-broker keyed lookup: alice (on broker:0) resolves dave's
        # pipe advertisement wherever its shard owner lives.
        found = world.alice.search_advertisements(
            adv_type="PipeAdvertisement", peer_id=str(dave.peer_id))
        assert found
        status = world.alice.peer_status(str(dave.peer_id))
        assert status["online"]

    def test_broker_cannot_link_itself(self, plain_world):
        with pytest.raises(OverlayError):
            plain_world.broker.link_broker(plain_world.broker)


class TestTasks:
    def test_task_roundtrip(self, joined_plain_world):
        world = joined_plain_world
        world.alice.register_task("rev", lambda s: s[::-1])
        assert world.bob.submit_task(str(world.alice.peer_id), "students",
                                     "rev", "abc") == "cba"

    def test_unknown_task_fails(self, joined_plain_world):
        world = joined_plain_world
        with pytest.raises(OverlayError):
            world.bob.submit_task(str(world.alice.peer_id), "students",
                                  "ghost", "x")

    def test_crashing_task_reported(self, joined_plain_world):
        world = joined_plain_world

        def boom(arg):
            raise RuntimeError("kaput")

        world.alice.register_task("boom", boom)
        with pytest.raises(OverlayError, match="kaput"):
            world.bob.submit_task(str(world.alice.peer_id), "students",
                                  "boom", "x")
