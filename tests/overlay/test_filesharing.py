"""File store and chunked transfer, standalone and through the primitives."""

import pytest

from repro.errors import OverlayError
from repro.jxta.messages import Message
from repro.overlay.filesharing import FileStore, chunked_fetch


class TestFileStore:
    def test_add_get(self):
        store = FileStore()
        store.add("a.txt", b"content")
        assert store.get("a.txt") == b"content"
        assert "a.txt" in store and len(store) == 1
        assert store.names() == ["a.txt"]

    def test_missing_file_raises(self):
        with pytest.raises(OverlayError):
            FileStore().get("ghost")

    def test_empty_name_rejected(self):
        with pytest.raises(OverlayError):
            FileStore().add("", b"x")

    def test_remove_idempotent(self):
        store = FileStore()
        store.add("a", b"x")
        store.remove("a")
        store.remove("a")
        assert "a" not in store

    def test_digest(self):
        from repro.crypto.sha2 import sha256

        store = FileStore()
        store.add("a", b"data")
        assert store.digest("a") == sha256(b"data").hex()

    def test_content_copied(self):
        content = bytearray(b"mutable")
        store = FileStore()
        store.add("a", bytes(content))
        content[0] = 0
        assert store.get("a") == b"mutable"


class TestChunkProtocol:
    def _req(self, name, offset, length):
        m = Message("file_req")
        m.add_text("file_name", name)
        m.add_text("offset", str(offset))
        m.add_text("length", str(length))
        return m

    def test_chunk_response(self):
        store = FileStore()
        store.add("f", b"0123456789")
        resp = store.handle_request(self._req("f", 2, 3))
        assert resp.msg_type == "file_resp"
        assert resp.get_bytes("data") == b"234"
        assert resp.get_text("eof") == "false"
        assert resp.get_text("total") == "10"

    def test_final_chunk_eof(self):
        store = FileStore()
        store.add("f", b"0123456789")
        resp = store.handle_request(self._req("f", 8, 10))
        assert resp.get_text("eof") == "true"
        assert resp.get_bytes("data") == b"89"

    def test_unknown_file(self):
        resp = FileStore().handle_request(self._req("ghost", 0, 10))
        assert resp.msg_type == "file_fail"

    def test_bad_range(self):
        store = FileStore()
        store.add("f", b"x")
        assert store.handle_request(self._req("f", -1, 10)).msg_type == "file_fail"
        assert store.handle_request(self._req("f", 0, 0)).msg_type == "file_fail"


class TestChunkedFetch:
    def _serving_endpoint(self, network, content):
        from repro.jxta.endpoint import Endpoint

        store = FileStore()
        store.add("big.bin", content)
        server = Endpoint(network, "server")
        server.on("file_req", lambda m, s: store.handle_request(m))
        return Endpoint(network, "client")

    @pytest.mark.parametrize("size,chunk", [(0, 100), (1, 100), (99, 100),
                                            (100, 100), (101, 100), (1000, 64)])
    def test_various_sizes(self, network, size, chunk):
        content = bytes(i % 251 for i in range(size))
        client = self._serving_endpoint(network, content)
        assert chunked_fetch(client, "server", "big.bin", chunk) == content

    def test_missing_file_raises(self, network):
        client = self._serving_endpoint(network, b"x")
        with pytest.raises(OverlayError):
            chunked_fetch(client, "server", "ghost")

    def test_bad_chunk_size_rejected(self, network):
        client = self._serving_endpoint(network, b"x")
        with pytest.raises(OverlayError):
            chunked_fetch(client, "server", "big.bin", chunk_size=0)


class TestFilePrimitives:
    def test_publish_search_fetch(self, joined_plain_world):
        world = joined_plain_world
        data = bytes(range(256)) * 20
        world.alice.publish_file("students", "notes.bin", data)
        offers = world.bob.search_files(group="students")
        assert [o.file_name for o in offers] == ["notes.bin"]
        assert offers[0].size == len(data)
        fetched = world.bob.request_file(str(world.alice.peer_id),
                                         "students", "notes.bin",
                                         chunk_size=500)
        assert fetched == data
        assert world.bob.events.events_named("file_received")

    def test_publish_requires_membership(self, joined_plain_world):
        world = joined_plain_world
        with pytest.raises(OverlayError):
            world.alice.publish_file("teachers", "f", b"x")

    def test_digest_check_on_fetch(self, joined_plain_world):
        world = joined_plain_world
        world.alice.publish_file("students", "f.bin", b"original")
        # owner silently swaps the content after advertising
        world.alice.files.add("f.bin", b"poisoned")
        with pytest.raises(OverlayError):
            world.bob.request_file(str(world.alice.peer_id), "students", "f.bin")
        assert world.bob.events.events_named("file_transfer_failed")
