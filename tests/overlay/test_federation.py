"""Sharded broker federation: ring, routing, anti-entropy, partitions."""

from __future__ import annotations

import contextlib

import pytest

from repro import obs
from repro.errors import OverlayError
from repro.jxta.advertisements import FileAdvertisement
from repro.overlay import Broker, ClientPeer
from repro.overlay.federation import VNODES, Federation, HashRing
from repro.overlay.presence import FederationSweeper
from repro.sim.faults import FaultPlan, Partition
from repro.sim.scheduler import Scheduler


@contextlib.contextmanager
def fresh_registry():
    """An isolated, enabled metrics registry for one assertion block."""
    saved = obs.get_registry()
    registry = obs.set_registry(obs.Registry(enabled=True))
    try:
        yield registry
    finally:
        obs.set_registry(saved)


class TestHashRing:
    def test_deterministic_and_stable(self):
        a, b = HashRing(), HashRing()
        for ring in (a, b):
            ring.add("broker:0")
            ring.add("broker:1")
            ring.add("broker:2")
        keys = [f"urn:jxta:peer-{i}" for i in range(64)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_single_node_owns_everything(self):
        ring = HashRing()
        ring.add("broker:0")
        assert all(ring.owner(f"k{i}") == "broker:0" for i in range(100))

    def test_remove_moves_only_lost_arcs(self):
        ring = HashRing()
        for n in ("broker:0", "broker:1", "broker:2"):
            ring.add(n)
        keys = [f"key-{i}" for i in range(256)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove("broker:2")
        for k in keys:
            if before[k] != "broker:2":
                assert ring.owner(k) == before[k]
            else:
                assert ring.owner(k) in ("broker:0", "broker:1")

    def test_empty_ring_raises(self):
        with pytest.raises(OverlayError):
            HashRing().owner("anything")

    def test_balance_within_tolerance(self):
        ring = HashRing(vnodes=VNODES)
        nodes = [f"broker:{i}" for i in range(4)]
        for n in nodes:
            ring.add(n)
        counts = {n: 0 for n in nodes}
        for i in range(4096):
            counts[ring.owner(f"urn:jxta:uuid-{i:032x}")] += 1
        expected = 4096 / 4
        for n in nodes:
            assert counts[n] / expected == pytest.approx(1.0, abs=0.5)


class TestRingMemo:
    """The memoized owner lookup must be invisible except for speed."""

    KEYS = [f"urn:jxta:peer-{i}" for i in range(128)]

    def _ring(self, n=3):
        ring = HashRing()
        for i in range(n):
            ring.add(f"broker:{i}")
        return ring

    def test_memo_matches_reference(self):
        ring = self._ring()
        assert [ring.owner(k) for k in self.KEYS] \
            == [ring.owner_uncached(k) for k in self.KEYS]
        # and again from a warm cache
        assert [ring.owner(k) for k in self.KEYS] \
            == [ring.owner_uncached(k) for k in self.KEYS]

    def test_add_invalidates_memo(self):
        ring = self._ring()
        for k in self.KEYS:
            ring.owner(k)  # warm
        ring.add("broker:99")
        assert [ring.owner(k) for k in self.KEYS] \
            == [ring.owner_uncached(k) for k in self.KEYS]

    def test_remove_invalidates_memo(self):
        ring = self._ring()
        stale = {k: ring.owner(k) for k in self.KEYS}  # warm
        ring.remove("broker:2")
        fresh = {k: ring.owner(k) for k in self.KEYS}
        assert fresh == {k: ring.owner_uncached(k) for k in self.KEYS}
        assert any(stale[k] == "broker:2" != fresh[k] for k in self.KEYS)

    def test_flag_off_bypasses_cache(self):
        from repro import perf

        ring = self._ring()
        with perf.flags(ring_memo=False):
            for k in self.KEYS:
                ring.owner(k)
            assert not ring._owner_cache

    def test_cache_capped(self):
        ring = self._ring()
        for i in range(ring.OWNER_CACHE_MAX + 10):
            ring.owner(f"overflow-{i}")
        assert len(ring._owner_cache) <= ring.OWNER_CACHE_MAX

    def test_membership_churn_via_fed_messages(self, plain_world):
        """fed_members gossip and fed_unlink must flush the memo.

        Broker link/unlink mutates each member's ring through the
        ``fed_members``/``fed_unlink`` wire frames — after every churn
        step the memoized owner map must equal the reference map."""
        world, (b1,) = _federated_world(plain_world)
        ring = world.broker.federation.ring

        def consistent():
            return all(ring.owner(k) == ring.owner_uncached(k)
                       for k in self.KEYS)

        assert consistent()
        b2 = Broker(world.net, "broker:2", world.db,
                    world.root.fork(b"memo-br2"), name="B2")
        b1.link_broker(b2)  # reaches broker:0 via fed_members gossip
        assert "broker:2" in world.broker.federation.members
        assert consistent()
        world.broker.unlink_broker(b1)  # fed_unlink both ways
        assert consistent()
        world.broker.link_broker(b1)
        assert consistent()


def _federated_world(plain_world, n_extra=1):
    """The plain-world broker plus ``n_extra`` linked brokers."""
    world = plain_world
    extras = [Broker(world.net, f"broker:{i + 1}", world.db,
                     world.root.fork(b"fedbr%d" % i), name=f"B{i + 1}")
              for i in range(n_extra)]
    for extra in extras:
        world.broker.link_broker(extra)
    return world, extras


class TestMembership:
    def test_link_by_address_and_object(self, plain_world):
        world, (b1,) = _federated_world(plain_world)
        b2 = Broker(world.net, "broker:2", world.db,
                    world.root.fork(b"br3"), name="B2")
        b1.link_broker("broker:2")  # by address, message-only
        assert "broker:2" in b1.federation.members
        assert b1.address in b2.federation.members

    def test_membership_gossips_transitively(self, plain_world):
        world, (b1,) = _federated_world(plain_world)
        b2 = Broker(world.net, "broker:2", world.db,
                    world.root.fork(b"br3"), name="B2")
        b1.link_broker(b2)
        # broker:0 never linked broker:2 directly, yet the gossip told it.
        assert "broker:2" in world.broker.federation.members
        assert "broker:0" in b2.federation.members

    def test_no_object_references_between_brokers(self, plain_world):
        world, (b1,) = _federated_world(plain_world)
        for record in world.broker.federation.members.values():
            assert isinstance(record.address, str)
        assert not hasattr(world.broker, "_peer_brokers")

    def test_cannot_link_itself(self, plain_world):
        with pytest.raises(OverlayError):
            plain_world.broker.link_broker(plain_world.broker)
        with pytest.raises(OverlayError):
            plain_world.broker.link_broker(plain_world.broker.address)

    def test_unlink_then_relink_does_not_duplicate_index(self, joined_plain_world):
        world, (b1,) = _federated_world(joined_plain_world)
        total = len(world.broker.control.cache) + len(b1.control.cache)
        world.broker.unlink_broker(b1)
        assert b1.address not in world.broker.federation.members
        assert world.broker.address not in b1.federation.members
        world.broker.link_broker(b1)
        assert len(world.broker.control.cache) + len(b1.control.cache) == total

    def test_index_is_partitioned_not_replicated(self, joined_plain_world):
        world, (b1,) = _federated_world(joined_plain_world)
        # Every entry lives on exactly one broker: its shard owner.
        for broker in (world.broker, b1):
            for entry in broker.control.cache.find():
                assert broker.federation.owner_of(
                    str(entry.parsed.peer_id)) == broker.address


class TestShardAwareClients:
    def test_single_broker_sees_no_redirects(self, joined_plain_world):
        world = joined_plain_world
        world.alice.search_advertisements(
            adv_type="PipeAdvertisement", peer_id=str(world.bob.peer_id))
        assert not world.alice._shard_owners

    def test_cross_broker_publish_and_lookup(self, joined_plain_world):
        world, (b1,) = _federated_world(joined_plain_world)
        world.db.register_user("dave", "pw-d", {"students"})
        dave = ClientPeer(world.net, "peer:dave", world.root.fork(b"dv"))
        dave.connect("broker:1")
        dave.login("dave", "pw-d")
        dave.publish_file("students", "notes.txt", b"shared")
        files = world.alice.search_files(peer_id=str(dave.peer_id))
        assert [f.file_name for f in files] == ["notes.txt"]
        status = world.alice.peer_status(str(dave.peer_id))
        assert status["online"] and status["username"] == "dave"

    def test_redirects_are_at_most_one_hop(self, joined_plain_world):
        world, extras = _federated_world(joined_plain_world, n_extra=3)
        owner_cache_before = dict(world.alice._shard_owners)
        assert owner_cache_before == {}
        world.alice.publish_file("students", "a.txt", b"a")
        # After one keyed primitive the owner (if remote) is cached, so a
        # repeat lookup goes straight there: at most one redirect total.
        with fresh_registry() as registry:
            world.alice.search_advertisements(
                adv_type="FileAdvertisement", peer_id=str(world.alice.peer_id))
            redirects = registry.count("fed.redirects")
        assert redirects <= 1

    def test_unkeyed_query_scatters_cluster_wide(self, joined_plain_world):
        world, (b1,) = _federated_world(joined_plain_world)
        world.db.register_user("dave", "pw-d", {"students"})
        dave = ClientPeer(world.net, "peer:dave", world.root.fork(b"dv"))
        dave.connect("broker:1")
        dave.login("dave", "pw-d")
        dave.publish_file("students", "remote.txt", b"r")
        world.alice.publish_file("students", "local.txt", b"l")
        names = {f.file_name for f in world.alice.search_files(group="students")}
        assert {"remote.txt", "local.txt"} <= names


class TestIndexSyncHardening:
    def test_foreign_index_sync_dropped_and_counted(self, joined_plain_world):
        from repro.jxta.messages import Message

        world = joined_plain_world
        adv = FileAdvertisement(peer_id=world.bob.peer_id, file_name="evil",
                                size=1, sha256_hex="00", group="students")
        rogue = Message("index_sync")
        rogue.add_xml("adv", adv.to_element())
        before = len(world.broker.control.cache)
        with fresh_registry() as registry:
            world.alice.control.endpoint.send("broker:0", rogue)
            rejected = registry.count("fed.reject.foreign_index_sync")
        assert rejected == 1
        assert len(world.broker.control.cache) == before
        assert not world.broker.control.cache.find(
            "FileAdvertisement", peer_id=str(world.bob.peer_id))

    def test_member_index_sync_still_accepted(self, joined_plain_world):
        from repro.jxta.messages import Message

        world, (b1,) = _federated_world(joined_plain_world)
        adv = FileAdvertisement(peer_id=b1.peer_id, file_name="legit",
                                size=1, sha256_hex="00", group="students")
        legit = Message("index_sync")
        legit.add_xml("adv", adv.to_element())
        b1.control.endpoint.send("broker:0", legit)
        assert world.broker.control.cache.find(
            "FileAdvertisement", peer_id=str(b1.peer_id))


class TestPartitionConvergence:
    def test_publish_during_partition_visible_after_heal(self, joined_plain_world):
        world, (b1,) = _federated_world(joined_plain_world)
        clock = world.net.clock
        scheduler = Scheduler(clock)
        FederationSweeper(world.broker, scheduler, interval=30.0)
        FederationSweeper(b1, scheduler, interval=30.0)
        FaultPlan(Partition(
            ["broker:0", "peer:alice", "peer:bob", "peer:carol"],
            ["broker:1"],
            start=10.0, heal_at=100.0)).install(world.net)
        clock.advance(20.0)  # inside the partition window
        # alice's publish can no longer reach a shard owner on broker:1;
        # the degraded path accepts it on her home broker.
        world.alice.publish_file("students", "wartime.txt", b"w")
        in_b0 = world.broker.control.cache.find(
            "FileAdvertisement", peer_id=str(world.alice.peer_id))
        in_b1 = b1.control.cache.find(
            "FileAdvertisement", peer_id=str(world.alice.peer_id))
        assert in_b0 or in_b1  # held *somewhere* despite the partition
        # Heal, then let the sweepers run an anti-entropy round.
        scheduler.run_until(200.0)
        owner = world.broker.federation.owner_of(str(world.alice.peer_id))
        owning_broker = world.broker if owner == "broker:0" else b1
        held = owning_broker.control.cache.find(
            "FileAdvertisement", peer_id=str(world.alice.peer_id))
        assert any(e.parsed.file_name == "wartime.txt" for e in held)
        # And cluster-wide visibility through a client query:
        files = world.carol.search_files(peer_id=str(world.alice.peer_id))
        assert "wartime.txt" in {f.file_name for f in files}


class TestAddressIndex:
    def test_session_lookup_uses_index(self, joined_plain_world):
        world = joined_plain_world
        broker = world.broker
        assert broker._addr_index["peer:alice"] == str(world.alice.peer_id)
        session = broker._session_for_address("peer:alice")
        assert session is not None and session.username == "alice"

    def test_index_cleared_on_logout_and_purge(self, joined_plain_world):
        world = joined_plain_world
        broker = world.broker
        world.alice.logout()
        assert "peer:alice" not in broker._addr_index
        broker.clock.advance(1000.0)
        broker.purge_stale(90.0)
        assert broker._addr_index == {}
        assert broker._session_for_address("peer:bob") is None

    def test_index_cleared_on_restart(self, joined_plain_world):
        broker = joined_plain_world.broker
        broker.restart()
        assert broker._addr_index == {}
        assert broker.federation.directory == {}


class TestPresenceDirectory:
    def test_directory_tracks_login_logout(self, plain_world):
        world = plain_world
        world.alice.connect("broker:0")
        world.alice.login("alice", "pw-a")
        pid = str(world.alice.peer_id)
        assert pid in world.broker.federation.directory
        world.alice.logout()
        assert pid not in world.broker.federation.directory

    def test_remote_session_status_served_by_owner(self, joined_plain_world):
        world, (b1,) = _federated_world(joined_plain_world)
        world.db.register_user("dave", "pw-d", {"students"})
        dave = ClientPeer(world.net, "peer:dave", world.root.fork(b"dv"))
        dave.connect("broker:1")
        dave.login("dave", "pw-d")
        pid = str(dave.peer_id)
        owner = world.broker.federation.owner_of(pid)
        owning = world.broker if owner == "broker:0" else b1
        assert pid in owning.federation.directory
        dave.logout()
        assert pid not in owning.federation.directory
