"""Control module helpers."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import OverlayError
from repro.jxta.ids import random_peer_id
from repro.overlay.control import ControlModule, pack_results, unpack_results
from repro.sim import SimNetwork, VirtualClock
from repro.xmllib import Element


@pytest.fixture()
def control():
    net = SimNetwork(clock=VirtualClock())
    return ControlModule(net, "peer:x", HmacDrbg(b"ctrl"))


class TestResultsPacking:
    def test_roundtrip(self):
        elems = [Element("A", text="1"), Element("B", text="2")]
        packed = pack_results(elems)
        out = unpack_results(packed)
        assert [e.tag for e in out] == ["A", "B"]

    def test_empty(self):
        assert unpack_results(pack_results([])) == []

    def test_wrong_wrapper_rejected(self):
        with pytest.raises(OverlayError):
            unpack_results(Element("NotResults"))


class TestControlModule:
    def test_open_group_pipe(self, control):
        peer = random_peer_id(control.drbg)
        pipe, adv = control.open_group_pipe(peer, "g1")
        assert adv.group == "g1"
        assert adv.address == "peer:x"
        assert str(adv.pipe_id) == str(pipe.pipe_id)
        assert control.pipes.get(pipe.pipe_id) is pipe

    def test_accept_advertisement_emits_event(self, control):
        from repro.jxta.advertisements import PeerAdvertisement

        got = []
        control.events.subscribe("advertisement_received",
                                 lambda **kw: got.append(kw))
        adv = PeerAdvertisement(peer_id=random_peer_id(control.drbg),
                                name="n", address="a")
        control.accept_advertisement(adv.to_element())
        assert len(got) == 1
        assert len(control.cache) == 1

    def test_cached_pipe_advertisement_copies(self, control):
        peer = random_peer_id(control.drbg)
        _, adv = control.open_group_pipe(peer, "g1")
        control.cache.publish_advertisement(adv)
        fetched = control.cached_pipe_advertisement(str(peer), "g1")
        fetched.add("Mutation", text="x")
        again = control.cached_pipe_advertisement(str(peer), "g1")
        assert again.find("Mutation") is None

    def test_close_unregisters(self, control):
        control.close()
        assert not control.network.is_registered("peer:x")
