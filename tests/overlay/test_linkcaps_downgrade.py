"""Mixed-capability federation: the link-caps exchange must degrade.

One broker runs the link scheduler with zlib on, its federation peer
runs the legacy one-frame-per-send wire.  The ``link_caps_req/ok``
exchange has to settle on ``codec="none"`` (nobody may assume the other
side can inflate), and the downgrade must be invisible one layer up:
group-cast relay across the mixed link still delivers the identical
plaintexts.
"""

from __future__ import annotations

from repro import wire
from repro.core import SecureBroker, SecureClientPeer
from repro.core.keystore import Keystore
from repro.jxta.messages import Message
from repro.overlay.policy import LinkPolicy
from tests.conftest import CAST_POLICY, CastWorld, cached_keypair

LINK_POLICY = LinkPolicy(compress_level=6, min_compress_bytes=64)


def _linked_broker(world, address, key_label):
    broker = SecureBroker.create(
        world.net, address, world.admin,
        world.root.fork(b"fed-" + key_label.encode()),
        name=address, policy=CAST_POLICY,
        keys=cached_keypair(512, key_label))
    world.broker.link_broker(broker)
    return broker


def _erin(world, broker_address):
    world.admin.register_user("erin", "pw-e", {"students"})
    erin = SecureClientPeer(
        world.net, "peer:erin", world.root.fork(b"erin"),
        world.admin.credential, name="erin-app", policy=CAST_POLICY,
        keystore=Keystore(cached_keypair(512, "client-erin")))
    erin.secure_connect(broker_address)
    erin.secure_login("erin", "pw-e")
    return erin


def _texts(client):
    return [e["text"] for e in client.events.events_named(
        "secure_message_received")]


class TestMixedFederationDowngrade:
    def test_negotiation_settles_on_codec_none(self):
        world = CastWorld()
        legacy = _linked_broker(world, "broker:1", "broker-legacy")
        assert world.broker.enable_link_batching(LINK_POLICY) is not None
        # the legacy broker never calls enable_link_batching
        assert legacy.link_policy is None
        assert world.broker.negotiate_link("broker:1") == 0

    def test_responder_answers_none_without_scheduler(self):
        world = CastWorld()
        _linked_broker(world, "broker:1", "broker-legacy")
        assert world.broker.enable_link_batching(LINK_POLICY) is not None
        req = Message("link_caps_req")
        req.add_json("codecs", ["zlib"])
        req.add_text("level", "6")
        resp = world.broker.control.endpoint.request("broker:1", req)
        assert resp.msg_type == "link_caps_ok"
        frame = wire.decode(resp)
        assert frame["codec"] == "none"
        assert int(frame["level"]) == 0

    def test_mixed_ring_negotiates_per_link(self):
        """Capable links still compress; only the legacy link degrades."""
        world = CastWorld()
        legacy = _linked_broker(world, "broker:1", "broker-legacy")
        capable = _linked_broker(world, "broker:2", "broker-capable")
        assert world.broker.enable_link_batching(LINK_POLICY) is not None
        assert capable.enable_link_batching(LINK_POLICY) is not None
        assert world.broker.negotiate_link("broker:1") == 0
        assert world.broker.negotiate_link("broker:2") == LINK_POLICY.compress_level

    def test_group_relay_parity_across_downgraded_link(self):
        world = CastWorld()
        legacy = _linked_broker(world, "broker:1", "broker-legacy")
        world.join_all()
        erin = _erin(world, "broker:1")
        assert world.broker.enable_link_batching(LINK_POLICY) is not None
        assert world.broker.negotiate_link("broker:1") == 0
        world.alice.secure_create_group("relay")
        world.bob.secure_join_group("relay")
        erin.secure_join_group("relay")
        # cast across the downgraded link, both directions (the returned
        # count covers the home broker's local fan-out only: bob for
        # alice's cast; erin has no local co-members, her count is 0)
        assert world.alice.secure_msg_peer_group("relay", "over the wire") == 1
        assert erin.secure_msg_peer_group("relay", "and back") == 0
        assert "over the wire" in _texts(erin)
        assert "over the wire" in _texts(world.bob)
        assert "and back" in _texts(world.alice)
        assert "and back" in _texts(world.bob)
        # the downgrade never re-ran the exchange to something lossy:
        # the legacy broker processed the relays without a scheduler
        assert legacy.link_policy is None
