"""The declarative scenario builder."""

import pytest

from repro.core import SecureClientPeer
from repro.core.policy import SecurityPolicy
from repro.crypto import envelope
from repro.errors import ReproError
from repro.overlay import ClientPeer
from repro.scenario import Scenario

FAST = SecurityPolicy(rsa_bits=512, envelope_wrap=envelope.WRAP_V15).validate()


def _basic():
    return (Scenario(seed=b"scn-test", policy=FAST)
            .with_user("alice", "pw-a", groups={"lab"})
            .with_user("bob", "pw-b", groups={"lab"})
            .with_broker("broker:0", name="B0")
            .with_secure_peer("alice")
            .with_secure_peer("bob"))


class TestBuild:
    def test_build_and_join(self):
        scn = _basic().build(join=True)
        assert scn.peers["alice"].username == "alice"
        assert scn.peers["bob"].groups == ["lab"]
        assert len(scn.broker().connected) == 2

    def test_secure_messaging_works(self):
        scn = _basic().build(join=True)
        got = []
        scn.peers["bob"].events.subscribe("secure_message_received",
                                          lambda **kw: got.append(kw))
        assert scn.peers["alice"].secure_msg_peer(
            str(scn.peers["bob"].peer_id), "lab", "hi")
        assert got

    def test_deterministic(self):
        a = _basic().build()
        b = _basic().build()
        assert str(a.peers["alice"].peer_id) == str(b.peers["alice"].peer_id)

    def test_default_broker_added(self):
        scn = (Scenario(seed=b"x", policy=FAST)
               .with_user("u", "p", groups={"g"})
               .with_secure_peer("u")
               .build(join=True))
        assert "broker:0" in scn.brokers

    def test_mixed_peers(self):
        scn = (Scenario(seed=b"mix", policy=FAST)
               .with_user("s", "p1", groups={"g"})
               .with_user("p", "p2", groups={"g"})
               .with_broker("broker:0")
               .with_secure_peer("s")
               .with_plain_peer("p")
               .build(join=True))
        assert isinstance(scn.peers["s"], SecureClientPeer)
        assert isinstance(scn.peers["p"], ClientPeer)
        assert not isinstance(scn.peers["p"], SecureClientPeer)
        assert scn.peers["p"].username == "p"

    def test_multi_broker_linked(self):
        scn = (Scenario(seed=b"mb", policy=FAST)
               .with_user("a", "p", groups={"g"})
               .with_user("b", "p", groups={"g"})
               .with_broker("broker:0")
               .with_broker("broker:1")
               .with_secure_peer("a")
               .with_secure_peer("b")
               .build())
        # join a on broker 0 and b on broker 1 manually
        scn.peers["a"].secure_connect("broker:0")
        scn.peers["a"].secure_login("a", "p")
        scn.peers["b"].secure_connect("broker:1")
        scn.peers["b"].secure_login("b", "p")
        got = []
        scn.peers["b"].events.subscribe("secure_message_received",
                                        lambda **kw: got.append(kw))
        assert scn.peers["a"].secure_msg_peer(
            str(scn.peers["b"].peer_id), "g", "cross")
        assert got


class TestValidation:
    def test_undeclared_peer_rejected(self):
        with pytest.raises(ReproError):
            (Scenario(seed=b"x", policy=FAST)
             .with_secure_peer("ghost")
             .build())

    def test_secure_peer_needs_secure_broker(self):
        with pytest.raises(ReproError):
            (Scenario(seed=b"x", policy=FAST)
             .with_user("u", "p")
             .with_broker("broker:0", secure=False)
             .with_secure_peer("u")
             .build())

    def test_plain_peer_on_plain_broker(self):
        scn = (Scenario(seed=b"pp", policy=FAST)
               .with_user("u", "p", groups={"g"})
               .with_broker("broker:0", secure=False)
               .with_plain_peer("u")
               .build(join=True))
        assert scn.peers["u"].username == "u"
