"""JXTA ids and the CBID key binding."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import JxtaError
from repro.jxta.ids import (
    CBID_BYTES,
    cbid_from_key,
    matches_key,
    parse_id,
    random_group_id,
    random_peer_id,
    random_pipe_id,
)


@pytest.fixture()
def rng():
    return HmacDrbg(b"ids")


class TestRandomIds:
    def test_urn_format(self, rng):
        pid = random_peer_id(rng)
        assert str(pid).startswith("urn:jxta:uuid-")
        assert len(pid.hex_payload) == CBID_BYTES * 2
        assert pid.kind == "peer"
        assert not pid.is_cbid

    def test_kinds(self, rng):
        assert random_pipe_id(rng).kind == "pipe"
        assert random_group_id(rng).kind == "group"

    def test_distinct(self, rng):
        assert random_peer_id(rng) != random_peer_id(rng)

    def test_ordering_and_hashing(self, rng):
        a, b = random_peer_id(rng), random_peer_id(rng)
        assert len({a, b, a}) == 2
        assert (a < b) or (b < a)


class TestCbid:
    def test_derived_from_key(self, kp512):
        cbid = cbid_from_key(kp512.public)
        assert cbid.is_cbid
        assert str(cbid).startswith("urn:jxta:cbid-")
        assert cbid.hex_payload == kp512.public.fingerprint()[:CBID_BYTES].hex()

    def test_deterministic(self, kp512):
        assert cbid_from_key(kp512.public) == cbid_from_key(kp512.public)

    def test_distinct_keys_distinct_cbids(self, kp512, kp512_b):
        assert cbid_from_key(kp512.public) != cbid_from_key(kp512_b.public)

    def test_matches_key_positive(self, kp512):
        assert matches_key(cbid_from_key(kp512.public), kp512.public)

    def test_matches_key_wrong_key(self, kp512, kp512_b):
        assert not matches_key(cbid_from_key(kp512.public), kp512_b.public)

    def test_random_id_never_matches(self, rng, kp512):
        # a non-CBID id asserts no binding and must fail the check
        assert not matches_key(random_peer_id(rng), kp512.public)


class TestParseId:
    def test_valid(self):
        urn = "urn:jxta:uuid-" + "ab" * 16
        assert str(parse_id(urn, "peer")) == urn

    def test_invalid_prefix_rejected(self):
        with pytest.raises(JxtaError):
            parse_id("urn:other:thing", "peer")

    def test_empty_rejected(self):
        with pytest.raises(JxtaError):
            parse_id("", "peer")
