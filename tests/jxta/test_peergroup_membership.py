"""Peer groups and membership services."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import GroupError, JxtaError
from repro.jxta.ids import random_group_id, random_peer_id
from repro.jxta.membership import NullMembership, PseMembership
from repro.jxta.peergroup import GroupTable

RNG = HmacDrbg(b"pg")


class TestPeerGroup:
    def test_membership(self):
        table = GroupTable()
        g = table.create(random_group_id(RNG), "staff")
        pid = random_peer_id(RNG)
        g.add_member(pid)
        assert g.has_member(pid)
        assert len(g) == 1
        g.remove_member(pid)
        assert not g.has_member(pid)

    def test_duplicate_member_idempotent(self):
        g = GroupTable().create(random_group_id(RNG), "g")
        pid = random_peer_id(RNG)
        g.add_member(pid)
        g.add_member(str(pid))
        assert len(g) == 1


class TestGroupTable:
    def test_create_and_get(self):
        table = GroupTable()
        table.create(random_group_id(RNG), "a")
        assert table.get("a").name == "a"
        assert "a" in table and len(table) == 1

    def test_duplicate_name_rejected(self):
        table = GroupTable()
        table.create(random_group_id(RNG), "a")
        with pytest.raises(GroupError):
            table.create(random_group_id(RNG), "a")

    def test_unknown_group_raises(self):
        with pytest.raises(GroupError):
            GroupTable().get("nope")
        assert GroupTable().get_or_none("nope") is None

    def test_groups_of(self):
        table = GroupTable()
        a = table.create(random_group_id(RNG), "a")
        b = table.create(random_group_id(RNG), "b")
        table.create(random_group_id(RNG), "c")
        pid = random_peer_id(RNG)
        a.add_member(pid)
        b.add_member(pid)
        assert sorted(g.name for g in table.groups_of(pid)) == ["a", "b"]

    def test_drop_member_everywhere(self):
        table = GroupTable()
        pid = random_peer_id(RNG)
        for name in "abc":
            table.create(random_group_id(RNG), name).add_member(pid)
        assert table.drop_member_everywhere(pid) == 3
        assert table.groups_of(pid) == []

    def test_names_sorted(self):
        table = GroupTable()
        for name in ("zeta", "alpha"):
            table.create(random_group_id(RNG), name)
        assert table.names() == ["alpha", "zeta"]


class TestNullMembership:
    def test_anyone_may_claim_any_name(self):
        m = NullMembership()
        assert m.current_identity() is None
        ident = m.apply("anyone-at-all")
        assert ident.name == "anyone-at-all"
        assert ident.public_key is None  # the stock-JXTA weakness
        m.resign()
        assert m.current_identity() is None


class TestPseMembership:
    def test_keystore_gated(self, kp512):
        from repro.crypto.rsa import KeyPair

        m = PseMembership()
        m.store_key("alice", kp512, passphrase="secret")
        with pytest.raises(JxtaError):
            m.apply("bob")  # no keystore entry
        with pytest.raises(JxtaError):
            m.apply("alice", "wrong")  # bad passphrase
        ident = m.apply("alice", "secret")
        assert ident.public_key == kp512.public
        assert m.keypair_of("alice") is kp512
        m.resign()
        assert m.current_identity() is None

    def test_unknown_keypair_rejected(self):
        with pytest.raises(JxtaError):
            PseMembership().keypair_of("ghost")
