"""JXTA message codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import JxtaError
from repro.jxta.messages import Message
from repro.xmllib import Element


class TestBuilding:
    def test_empty_type_rejected(self):
        with pytest.raises(JxtaError):
            Message("")

    def test_element_kinds(self):
        m = Message("t")
        m.add_text("a", "text")
        m.add_bytes("b", b"\x00\xff")
        m.add_xml("c", Element("X", text="y"))
        m.add_json("d", {"k": 1})
        assert m.names() == ["a", "b", "c", "d"]
        assert m.has("a") and not m.has("z")

    def test_add_xml_requires_element(self):
        with pytest.raises(JxtaError):
            Message("t").add_xml("x", "<X/>")  # type: ignore[arg-type]

    def test_type_errors_on_wrong_getter(self):
        m = Message("t").add_text("a", "text")
        with pytest.raises(JxtaError):
            m.get_bytes("a")
        with pytest.raises(JxtaError):
            m.get_xml("a")

    def test_missing_element(self):
        with pytest.raises(JxtaError):
            Message("t").get_text("nope")


class TestWire:
    def test_roundtrip_all_kinds(self):
        m = Message("mixed", ns="custom-ns")
        m.add_text("t", "hello <world> & co")
        m.add_bytes("b", bytes(range(256)))
        m.add_xml("x", Element("Adv", attrib={"a": "1"}, text="body"))
        m.add_json("j", {"list": [1, 2], "s": "x"})
        m2 = Message.from_wire(m.to_wire())
        assert m2.msg_type == "mixed" and m2.ns == "custom-ns"
        assert m2.get_text("t") == "hello <world> & co"
        assert m2.get_bytes("b") == bytes(range(256))
        assert m2.get_xml("x").structurally_equal(Element("Adv", attrib={"a": "1"}, text="body"))
        assert m2.get_json("j") == {"list": [1, 2], "s": "x"}

    @settings(max_examples=30, deadline=None)
    @given(st.text(min_size=0, max_size=200), st.binary(max_size=200))
    def test_roundtrip_property(self, text, blob):
        m = Message("prop")
        m.add_text("t", text)
        m.add_bytes("b", blob)
        m2 = Message.from_wire(m.to_wire())
        assert m2.get_text("t") == text
        assert m2.get_bytes("b") == blob

    def test_element_order_preserved(self):
        m = Message("t")
        for i in range(5):
            m.add_text(f"e{i}", str(i))
        assert Message.from_wire(m.to_wire()).names() == [f"e{i}" for i in range(5)]

    def test_duplicate_names_allowed_and_first_wins_on_get(self):
        m = Message("t")
        m.add_text("dup", "first")
        m.add_text("dup", "second")
        m2 = Message.from_wire(m.to_wire())
        assert m2.get_text("dup") == "first"
        assert m2.names().count("dup") == 2


class TestMalformedWire:
    def test_not_xml(self):
        with pytest.raises(JxtaError):
            Message.from_wire(b"this is not xml")

    def test_not_utf8(self):
        with pytest.raises(JxtaError):
            Message.from_wire(b"\xff\xfe<Message/>")

    def test_wrong_root(self):
        with pytest.raises(JxtaError):
            Message.from_wire(b"<Wrong/>")

    def test_missing_type(self):
        with pytest.raises(JxtaError):
            Message.from_wire(b'<Message ns="x"/>')

    def test_unnamed_element(self):
        with pytest.raises(JxtaError):
            Message.from_wire(b'<Message type="t"><Elem>v</Elem></Message>')

    def test_unknown_encoding(self):
        with pytest.raises(JxtaError):
            Message.from_wire(
                b'<Message type="t"><Elem name="x" enc="rot13">v</Elem></Message>')

    def test_bad_json(self):
        m = Message("t").add_text("j", "{not json")
        with pytest.raises(JxtaError):
            m.get_json("j")
