"""Advertisement cache: replacement, expiry, queries, raw-byte fidelity."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import DiscoveryError
from repro.jxta import AdvertisementCache, PipeAdvertisement
from repro.jxta.advertisements import FileAdvertisement, PeerAdvertisement
from repro.jxta.ids import random_peer_id, random_pipe_id
from repro.sim import VirtualClock

RNG = HmacDrbg(b"disc")


@pytest.fixture()
def clock():
    return VirtualClock()


@pytest.fixture()
def cache(clock):
    return AdvertisementCache(clock, lifetime=100.0)


def _pipe_adv(peer=None, group="g"):
    return PipeAdvertisement(
        peer_id=peer or random_peer_id(RNG), pipe_id=random_pipe_id(RNG),
        group=group, address="peer:x")


class TestPublish:
    def test_publish_and_find(self, cache):
        adv = _pipe_adv()
        cache.publish_advertisement(adv)
        assert len(cache) == 1
        entry = cache.find_one("PipeAdvertisement", str(adv.peer_id), group="g")
        assert entry.parsed.key() == adv.key()

    def test_replacement_semantics(self, cache):
        peer = random_peer_id(RNG)
        cache.publish_advertisement(_pipe_adv(peer))
        cache.publish_advertisement(_pipe_adv(peer))  # same (type,peer,group)
        assert len(cache) == 1

    def test_different_groups_coexist(self, cache):
        peer = random_peer_id(RNG)
        cache.publish_advertisement(_pipe_adv(peer, "g1"))
        cache.publish_advertisement(_pipe_adv(peer, "g2"))
        assert len(cache) == 2

    def test_raw_bytes_preserved(self, cache):
        """Signed advertisements must survive the cache byte-identically."""
        from repro.xmllib import canonicalize

        elem = _pipe_adv().to_element()
        elem.add("Signature").add("SignatureValue", text="untouchable")
        before = canonicalize(elem)
        cache.publish(elem)
        stored = cache.find(adv_type="PipeAdvertisement")[0].element
        assert canonicalize(stored) == before

    def test_returned_element_is_a_copy(self, cache):
        adv = _pipe_adv()
        cache.publish_advertisement(adv)
        fetched = cache.elements(adv_type="PipeAdvertisement")[0]
        fetched.add("Tamper", text="x")
        again = cache.elements(adv_type="PipeAdvertisement")[0]
        assert again.find("Tamper") is None


class TestExpiry:
    def test_expires_after_lifetime(self, cache, clock):
        cache.publish_advertisement(_pipe_adv())
        clock.advance(99.0)
        assert len(cache) == 1
        clock.advance(2.0)
        assert len(cache) == 0

    def test_custom_lifetime(self, cache, clock):
        cache.publish_advertisement(_pipe_adv(), lifetime=5.0)
        clock.advance(6.0)
        assert len(cache) == 0

    def test_republish_refreshes(self, cache, clock):
        adv = _pipe_adv()
        cache.publish_advertisement(adv)
        clock.advance(90.0)
        cache.publish_advertisement(adv)
        clock.advance(50.0)
        assert len(cache) == 1

    def test_expire_removes_entries(self, cache, clock):
        cache.publish_advertisement(_pipe_adv())
        clock.advance(101.0)
        assert cache.expire() == 1


class TestQueries:
    def test_filter_by_type(self, cache):
        peer = random_peer_id(RNG)
        cache.publish_advertisement(_pipe_adv(peer))
        cache.publish_advertisement(PeerAdvertisement(
            peer_id=peer, name="n", address="a"))
        assert len(cache.find(adv_type="PipeAdvertisement")) == 1
        assert len(cache.find(peer_id=str(peer))) == 2

    def test_filter_by_group(self, cache):
        cache.publish_advertisement(_pipe_adv(group="g1"))
        cache.publish_advertisement(_pipe_adv(group="g2"))
        assert len(cache.find(group="g1")) == 1

    def test_find_one_missing_raises(self, cache):
        with pytest.raises(DiscoveryError):
            cache.find_one("PipeAdvertisement", "urn:jxta:uuid-" + "00" * 16)

    def test_find_one_ambiguous_raises(self, cache):
        peer = random_peer_id(RNG)
        cache.publish_advertisement(_pipe_adv(peer, "g1"))
        cache.publish_advertisement(_pipe_adv(peer, "g2"))
        with pytest.raises(DiscoveryError):
            cache.find_one("PipeAdvertisement", str(peer))


class TestRemovePeer:
    def test_removes_all_peer_advs(self, cache):
        peer = random_peer_id(RNG)
        cache.publish_advertisement(_pipe_adv(peer, "g1"))
        cache.publish_advertisement(FileAdvertisement(
            peer_id=peer, file_name="f", size=1, sha256_hex="x", group="g1"))
        other = _pipe_adv()
        cache.publish_advertisement(other)
        assert cache.remove_peer(str(peer)) == 2
        assert len(cache) == 1
