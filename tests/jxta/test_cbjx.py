"""CBJX crypto-based encapsulation baseline (ref [12])."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import TransportError
from repro.jxta.ids import cbid_from_key
from repro.jxta.transport.cbjx import CbjxTransport


@pytest.fixture()
def pair(kp512, kp512_b):
    return (CbjxTransport(kp512, HmacDrbg(b"a")),
            CbjxTransport(kp512_b, HmacDrbg(b"b")))


class TestRoundtrip:
    def test_wrap_unwrap(self, pair):
        a, b = pair
        wire = a.wrap(b"payload", peer="peer:b", local="peer:a")
        assert b.unwrap(wire, peer="peer:a", local="peer:b") == b"payload"

    def test_cbid_matches_key(self, pair, kp512):
        a, _ = pair
        assert a.cbid == cbid_from_key(kp512.public)

    def test_empty_payload(self, pair):
        a, b = pair
        wire = a.wrap(b"", peer="peer:b", local="peer:a")
        assert b.unwrap(wire, peer="peer:a", local="peer:b") == b""

    def test_integrity_not_confidentiality(self, pair):
        # CBJX signs but does NOT encrypt: the payload is readable — this
        # is the gap the paper's secure messaging fills.
        a, _ = pair
        wire = a.wrap(b"readable-content", peer="peer:b", local="peer:a")
        assert b"readable-content" in wire


class TestRejection:
    def test_tampered_payload(self, pair):
        a, b = pair
        wire = bytearray(a.wrap(b"payload", peer="peer:b", local="peer:a"))
        wire[-1] ^= 1
        with pytest.raises(TransportError):
            b.unwrap(bytes(wire), peer="peer:a", local="peer:b")

    def test_redirected_frame(self, pair):
        a, b = pair
        wire = a.wrap(b"payload", peer="peer:c", local="peer:a")
        with pytest.raises(TransportError):
            b.unwrap(wire, peer="peer:a", local="peer:b")

    def test_truncated_frame(self, pair):
        _, b = pair
        with pytest.raises(TransportError):
            b.unwrap(b"\x00\x00", peer="peer:a", local="peer:b")

    def test_forged_source_id(self, pair, kp512, kp512_b):
        # attacker substitutes its own key but keeps the victim's CBID
        import struct

        a, b = pair
        wire = a.wrap(b"payload", peer="peer:b", local="peer:a")
        # parse the frame and replace the source id with a mismatching one
        (src_len,) = struct.unpack_from(">I", wire, 0)
        fake_src = str(cbid_from_key(kp512_b.public)).encode()
        forged = struct.pack(">I", len(fake_src)) + fake_src + wire[4 + src_len:]
        with pytest.raises(TransportError):
            b.unwrap(forged, peer="peer:a", local="peer:b")
