"""Endpoint service and pipes over the simulated network."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import JxtaError, NetworkError, PipeError
from repro.jxta import Endpoint, Message, PipeAdvertisement, PipeRegistry
from repro.jxta.ids import random_peer_id, random_pipe_id
from repro.jxta.pipes import OutputPipe
from repro.sim import SimNetwork, VirtualClock


@pytest.fixture()
def net():
    return SimNetwork(clock=VirtualClock())


@pytest.fixture()
def rng():
    return HmacDrbg(b"ep")


class TestEndpoint:
    def test_request_response(self, net):
        a = Endpoint(net, "a")
        b = Endpoint(net, "b")

        def handler(msg, src):
            assert src == "a"
            out = Message("pong")
            out.add_text("v", msg.get_text("v") * 2)
            return out

        b.on("ping", handler)
        req = Message("ping")
        req.add_text("v", "x")
        assert a.request("b", req).get_text("v") == "xx"

    def test_duplicate_handler_rejected(self, net):
        e = Endpoint(net, "e")
        e.on("t", lambda m, s: None)
        with pytest.raises(JxtaError):
            e.on("t", lambda m, s: None)

    def test_default_handler(self, net):
        seen = []
        a = Endpoint(net, "a")
        b = Endpoint(net, "b")
        b.on_default(lambda m, s: seen.append(m.msg_type) or None)
        a.send("b", Message("anything"))
        assert seen == ["anything"]

    def test_unhandled_message_counted(self, net):
        a = Endpoint(net, "a")
        b = Endpoint(net, "b")
        a.send("b", Message("nobody-listens"))
        assert b.metrics.count("rx.unhandled") == 1

    def test_undecodable_frame_dropped(self, net):
        b = Endpoint(net, "b")
        net.register("raw", lambda f: None)
        net.send("raw", "b", b"garbage bytes")
        assert b.metrics.count("rx.undecodable") == 1

    def test_request_without_answer_raises(self, net):
        a = Endpoint(net, "a")
        b = Endpoint(net, "b")
        b.on("q", lambda m, s: None)
        with pytest.raises(NetworkError):
            a.request("b", Message("q"))

    def test_close_unregisters(self, net):
        a = Endpoint(net, "a")
        a.close()
        assert not net.is_registered("a")

    def test_metrics_track_traffic(self, net):
        a = Endpoint(net, "a")
        b = Endpoint(net, "b")
        b.on("q", lambda m, s: Message("r"))
        a.request("b", Message("q"))
        a.send("b", Message("q2"))
        assert a.metrics.count("tx.requests") == 1
        assert a.metrics.count("tx.messages") == 1
        assert a.metrics.count("tx.bytes") > 0


class TestPipes:
    def test_input_output_delivery(self, net, rng):
        sender = Endpoint(net, "sender")
        receiver = Endpoint(net, "receiver")
        registry = PipeRegistry(receiver)
        pid = random_pipe_id(rng)
        pipe = registry.create_input_pipe(pid, "g")
        adv = PipeAdvertisement(peer_id=random_peer_id(rng), pipe_id=pid,
                                group="g", address="receiver")
        out = OutputPipe(sender, adv)
        inner = Message("chat")
        inner.add_text("text", "hello")
        assert out.send(inner)
        assert pipe.received[0].get_text("text") == "hello"

    def test_listener_invoked(self, net, rng):
        receiver = Endpoint(net, "receiver")
        registry = PipeRegistry(receiver)
        pid = random_pipe_id(rng)
        pipe = registry.create_input_pipe(pid, "g")
        seen = []
        pipe.add_listener(lambda msg, src: seen.append((msg.msg_type, src)))
        sender = Endpoint(net, "sender")
        OutputPipe(sender, PipeAdvertisement(
            peer_id=random_peer_id(rng), pipe_id=pid, group="g",
            address="receiver")).send(Message("m"))
        assert seen == [("m", "sender")]

    def test_unknown_pipe_counted(self, net, rng):
        receiver = Endpoint(net, "receiver")
        PipeRegistry(receiver)
        sender = Endpoint(net, "sender")
        ghost = PipeAdvertisement(peer_id=random_peer_id(rng),
                                  pipe_id=random_pipe_id(rng), group="g",
                                  address="receiver")
        OutputPipe(sender, ghost).send(Message("m"))
        assert receiver.metrics.count("pipe.unknown") == 1

    def test_duplicate_pipe_rejected(self, net, rng):
        registry = PipeRegistry(Endpoint(net, "r"))
        pid = random_pipe_id(rng)
        registry.create_input_pipe(pid, "g")
        with pytest.raises(PipeError):
            registry.create_input_pipe(pid, "g")

    def test_close_pipe(self, net, rng):
        registry = PipeRegistry(Endpoint(net, "r"))
        pid = random_pipe_id(rng)
        registry.create_input_pipe(pid, "g")
        registry.close_pipe(pid)
        assert registry.get(pid) is None

    def test_output_pipe_requires_address(self, net, rng):
        sender = Endpoint(net, "s")
        bad = PipeAdvertisement(peer_id=random_peer_id(rng),
                                pipe_id=random_pipe_id(rng), group="g",
                                address="")
        with pytest.raises(PipeError):
            OutputPipe(sender, bad)
