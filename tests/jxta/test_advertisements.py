"""Typed advertisements and the XML codec registry."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import AdvertisementError
from repro.jxta.advertisements import (
    Advertisement,
    FileAdvertisement,
    GroupAdvertisement,
    PeerAdvertisement,
    PipeAdvertisement,
    PresenceAdvertisement,
    StatsAdvertisement,
    advertisement_types,
)
from repro.jxta.ids import random_group_id, random_peer_id, random_pipe_id
from repro.xmllib import Element, parse, serialize

RNG = HmacDrbg(b"adv-tests")
PEER = random_peer_id(RNG)


def roundtrip(adv):
    return Advertisement.from_element(parse(serialize(adv.to_element())))


class TestRegistry:
    def test_all_types_registered(self):
        assert set(advertisement_types()) >= {
            "PeerAdvertisement", "PipeAdvertisement", "FileAdvertisement",
            "PresenceAdvertisement", "StatsAdvertisement", "GroupAdvertisement"}

    def test_unknown_type_rejected(self):
        with pytest.raises(AdvertisementError):
            Advertisement.from_element(Element("MysteryAdvertisement"))

    def test_subclass_parse_enforces_type(self):
        adv = PeerAdvertisement(peer_id=PEER, name="n", address="a")
        with pytest.raises(AdvertisementError):
            PipeAdvertisement.from_element(adv.to_element())


class TestPeerAdvertisement:
    def test_roundtrip(self):
        adv = PeerAdvertisement(peer_id=PEER, name="alice", address="peer:alice")
        back = roundtrip(adv)
        assert isinstance(back, PeerAdvertisement)
        assert back.name == "alice" and back.address == "peer:alice"
        assert str(back.peer_id) == str(PEER)

    def test_missing_field_rejected(self):
        elem = PeerAdvertisement(peer_id=PEER, name="n", address="a").to_element()
        elem.remove(elem.find("Name"))
        with pytest.raises(AdvertisementError):
            Advertisement.from_element(elem)

    def test_missing_peer_id_rejected(self):
        elem = PeerAdvertisement(peer_id=PEER, name="n", address="a").to_element()
        elem.remove(elem.find("PeerId"))
        with pytest.raises(AdvertisementError):
            Advertisement.from_element(elem)


class TestPipeAdvertisement:
    def test_roundtrip(self):
        adv = PipeAdvertisement(peer_id=PEER, pipe_id=random_pipe_id(RNG),
                                group="g", address="peer:x")
        back = roundtrip(adv)
        assert isinstance(back, PipeAdvertisement)
        assert back.group == "g" and back.pipe_type == "JxtaUnicast"

    def test_requires_pipe_id(self):
        with pytest.raises(AdvertisementError):
            PipeAdvertisement(peer_id=PEER, group="g", address="a").to_element()

    def test_key_includes_group(self):
        a = PipeAdvertisement(peer_id=PEER, pipe_id=random_pipe_id(RNG),
                              group="g1", address="x")
        b = PipeAdvertisement(peer_id=PEER, pipe_id=random_pipe_id(RNG),
                              group="g2", address="x")
        assert a.key() != b.key()


class TestFileAdvertisement:
    def test_roundtrip(self):
        adv = FileAdvertisement(peer_id=PEER, file_name="f.txt", size=123,
                                sha256_hex="ab" * 32, group="g")
        back = roundtrip(adv)
        assert isinstance(back, FileAdvertisement)
        assert back.size == 123 and back.file_name == "f.txt"

    def test_bad_size_rejected(self):
        elem = FileAdvertisement(peer_id=PEER, file_name="f", size=1,
                                 sha256_hex="x", group="g").to_element()
        elem.find("Size").text = "not-a-number"
        with pytest.raises(AdvertisementError):
            Advertisement.from_element(elem)

    def test_key_includes_file_name(self):
        a = FileAdvertisement(peer_id=PEER, file_name="a", size=1,
                              sha256_hex="x", group="g")
        b = FileAdvertisement(peer_id=PEER, file_name="b", size=1,
                              sha256_hex="x", group="g")
        assert a.key() != b.key()


class TestPresenceAdvertisement:
    def test_roundtrip_float_timestamp(self):
        adv = PresenceAdvertisement(peer_id=PEER, group="g",
                                    timestamp=123.456789, status="online")
        back = roundtrip(adv)
        assert isinstance(back, PresenceAdvertisement)
        assert back.timestamp == pytest.approx(123.456789)

    def test_bad_timestamp_rejected(self):
        elem = PresenceAdvertisement(peer_id=PEER, group="g",
                                     timestamp=1.0).to_element()
        elem.find("Timestamp").text = "yesterday"
        with pytest.raises(AdvertisementError):
            Advertisement.from_element(elem)


class TestStatsAdvertisement:
    def test_roundtrip(self):
        adv = StatsAdvertisement(peer_id=PEER, group="g",
                                 messages_sent=7, files_shared=2)
        back = roundtrip(adv)
        assert isinstance(back, StatsAdvertisement)
        assert back.messages_sent == 7 and back.files_shared == 2


class TestGroupAdvertisement:
    def test_roundtrip(self):
        adv = GroupAdvertisement(peer_id=PEER, group_id=random_group_id(RNG),
                                 name="staff", description="desc")
        back = roundtrip(adv)
        assert isinstance(back, GroupAdvertisement)
        assert back.name == "staff" and back.description == "desc"


class TestExtras:
    def test_unknown_leaf_fields_preserved(self):
        elem = PeerAdvertisement(peer_id=PEER, name="n", address="a").to_element()
        elem.add("CustomField", text="custom-value")
        back = Advertisement.from_element(elem)
        assert back.extras.get("CustomField") == "custom-value"

    def test_signature_child_ignored_by_parser(self):
        elem = PeerAdvertisement(peer_id=PEER, name="n", address="a").to_element()
        sig = elem.add("Signature")
        sig.add("SignedInfo")
        back = Advertisement.from_element(elem)
        assert isinstance(back, PeerAdvertisement)
        assert "Signature" not in back.extras
