"""The simplified TLS baseline (ref [11])."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import HandshakeError, TransportError
from repro.jxta.transport.tls import (
    TlsClient,
    TlsServer,
    TlsTransport,
    handshake_in_memory,
)


@pytest.fixture()
def session(kp1024):
    client = TlsClient(HmacDrbg(b"c"))
    server = TlsServer(kp1024, HmacDrbg(b"s"))
    handshake_in_memory(client, server)
    return client, server


class TestHandshake:
    def test_establishes_both_records(self, session):
        client, server = session
        assert client.record is not None and server.record is not None

    def test_client_learns_server_key(self, session, kp1024):
        client, _ = session
        assert client.server_key == kp1024.public

    def test_pinned_key_mismatch_rejected(self, kp1024, kp512):
        client = TlsClient(HmacDrbg(b"c"), expected_server_key=kp512.public)
        server = TlsServer(kp1024, HmacDrbg(b"s"))
        with pytest.raises(HandshakeError):
            handshake_in_memory(client, server)

    def test_out_of_order_rejected(self, kp1024):
        client = TlsClient(HmacDrbg(b"c"))
        with pytest.raises(HandshakeError):
            client.key_exchange(b"x" * 40)
        server = TlsServer(kp1024, HmacDrbg(b"s"))
        with pytest.raises(HandshakeError):
            server.finish(b"x" * 200)

    def test_malformed_hello_rejected(self, kp1024):
        server = TlsServer(kp1024, HmacDrbg(b"s"))
        with pytest.raises(HandshakeError):
            server.hello(b"short")

    def test_tampered_key_exchange_rejected(self, kp1024):
        client = TlsClient(HmacDrbg(b"c"))
        server = TlsServer(kp1024, HmacDrbg(b"s"))
        server_hello = server.hello(client.hello())
        keyex = bytearray(client.key_exchange(server_hello))
        keyex[10] ^= 1
        with pytest.raises(HandshakeError):
            server.finish(bytes(keyex))

    def test_tampered_server_finished_rejected(self, kp1024):
        client = TlsClient(HmacDrbg(b"c"))
        server = TlsServer(kp1024, HmacDrbg(b"s"))
        server_hello = server.hello(client.hello())
        finished = bytearray(server.finish(client.key_exchange(server_hello)))
        finished[0] ^= 1
        with pytest.raises(HandshakeError):
            client.verify_finish(bytes(finished))

    def test_sessions_have_distinct_keys(self, kp1024):
        c1, s1 = TlsClient(HmacDrbg(b"c1")), TlsServer(kp1024, HmacDrbg(b"s1"))
        c2, s2 = TlsClient(HmacDrbg(b"c2")), TlsServer(kp1024, HmacDrbg(b"s2"))
        handshake_in_memory(c1, s1)
        handshake_in_memory(c2, s2)
        record = c1.record.protect(b"payload")
        with pytest.raises(TransportError):
            s2.record.unprotect(record)


class TestRecordLayer:
    def test_bidirectional(self, session):
        client, server = session
        assert server.record.unprotect(client.record.protect(b"c->s")) == b"c->s"
        assert client.record.unprotect(server.record.protect(b"s->c")) == b"s->c"

    def test_confidentiality(self, session):
        client, _ = session
        record = client.record.protect(b"very secret words")
        assert b"very secret words" not in record

    def test_replay_rejected(self, session):
        client, server = session
        record = client.record.protect(b"once")
        server.record.unprotect(record)
        with pytest.raises(TransportError):
            server.record.unprotect(record)

    def test_reorder_rejected(self, session):
        client, server = session
        r1 = client.record.protect(b"one")
        r2 = client.record.protect(b"two")
        with pytest.raises(TransportError):
            server.record.unprotect(r2)  # skipping r1

    def test_tampered_record_rejected(self, session):
        client, server = session
        record = bytearray(client.record.protect(b"data"))
        record[-1] ^= 1
        with pytest.raises(TransportError):
            server.record.unprotect(bytes(record))

    def test_short_record_rejected(self, session):
        _, server = session
        with pytest.raises(TransportError):
            server.record.unprotect(b"tiny")


class TestTlsTransport:
    def test_wrap_requires_session(self):
        transport = TlsTransport()
        with pytest.raises(TransportError):
            transport.wrap(b"x", peer="p", local="l")
        with pytest.raises(TransportError):
            transport.unwrap(b"x", peer="p", local="l")

    def test_installed_session_used(self, session):
        client, server = session
        ct = TlsTransport()
        st = TlsTransport()
        ct.install("server-addr", client.record)
        st.install("client-addr", server.record)
        assert ct.has_session("server-addr")
        wire = ct.wrap(b"payload", peer="server-addr", local="client-addr")
        assert st.unwrap(wire, peer="client-addr", local="server-addr") == b"payload"
