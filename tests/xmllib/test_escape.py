"""Escaping and entity resolution."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xmllib.escape import escape_attr, escape_text, unescape


class TestEscapeText:
    def test_specials(self):
        assert escape_text("a & b < c > d") == "a &amp; b &lt; c &gt; d"

    def test_quotes_untouched_in_text(self):
        assert escape_text('say "hi"') == 'say "hi"'

    def test_identity_on_plain(self):
        assert escape_text("plain text 123") == "plain text 123"


class TestEscapeAttr:
    def test_quotes_escaped(self):
        assert escape_attr('v="x"') == "v=&quot;x&quot;"

    def test_whitespace_escaped(self):
        assert escape_attr("a\nb\tc\rd") == "a&#10;b&#9;c&#13;d"


class TestUnescape:
    def test_named_entities(self):
        assert unescape("&amp;&lt;&gt;&quot;&apos;") == "&<>\"'"

    def test_numeric_decimal(self):
        assert unescape("&#65;") == "A"

    def test_numeric_hex(self):
        assert unescape("&#x41;&#X42;") == "AB"

    def test_unknown_entity_rejected(self):
        with pytest.raises(ValueError):
            unescape("&bogus;")

    def test_unterminated_rejected(self):
        with pytest.raises(ValueError):
            unescape("abc &amp")

    @given(st.text(max_size=200))
    def test_text_roundtrip(self, text):
        assert unescape(escape_text(text)) == text

    @given(st.text(max_size=200))
    def test_attr_roundtrip(self, text):
        assert unescape(escape_attr(text)) == text
