"""The recursive-descent XML parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XMLParseError
from repro.xmllib import Element, parse, serialize


class TestBasics:
    def test_empty_element(self):
        assert parse("<A/>").tag == "A"
        assert parse("<A></A>").tag == "A"

    def test_attributes(self):
        e = parse('<A x="1" y=\'2\'/>')
        assert e.get("x") == "1" and e.get("y") == "2"

    def test_text(self):
        assert parse("<A>hello</A>").text == "hello"

    def test_nested(self):
        e = parse("<A><B>1</B><C><D/></C></A>")
        assert [c.tag for c in e.children] == ["B", "C"]
        assert e.find("C").find("D") is not None

    def test_entities_resolved(self):
        assert parse("<A>&lt;tag&gt; &amp; &quot;</A>").text == '<tag> & "'

    def test_whitespace_between_children_ignored(self):
        e = parse("<A>\n  <B/>\n  <C/>\n</A>")
        assert [c.tag for c in e.children] == ["B", "C"]
        assert e.text == ""

    def test_xml_declaration_skipped(self):
        assert parse('<?xml version="1.0"?><A/>').tag == "A"

    def test_comments_skipped(self):
        e = parse("<!-- before --><A><!-- inside --><B/></A><!-- after -->")
        assert [c.tag for c in e.children] == ["B"]

    def test_cdata(self):
        assert parse("<A><![CDATA[<raw> & text]]></A>").text == "<raw> & text"

    def test_attr_entities(self):
        assert parse('<A v="&amp;&quot;"/>').get("v") == '&"'


class TestRejections:
    @pytest.mark.parametrize("bad", [
        "",
        "<A>",                      # unterminated
        "<A></B>",                  # mismatched
        "<A><B></A></B>",           # interleaved
        "<A/><B/>",                 # two roots
        "<A x=1/>",                 # unquoted attr
        '<A x="1" x="2"/>',         # duplicate attr
        "text only",
        "<A>text<B/></A>",          # mixed content
        "<A>&undefined;</A>",       # unknown entity
        "<!DOCTYPE html><A/>",      # DTD forbidden
        "<A><!ENTITY x 'y'></A>",   # entity decl forbidden
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(XMLParseError):
            parse(bad)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XMLParseError):
            parse("<A/>garbage")


# strategy for generating random element trees
_names = st.sampled_from(["Alpha", "Beta", "Gamma", "d-elta", "e.p", "n_s"])
_texts = st.text(max_size=30)


@st.composite
def element_trees(draw, depth=0):
    tag = draw(_names)
    n_attrs = draw(st.integers(min_value=0, max_value=3))
    attrib = {}
    for i in range(n_attrs):
        attrib[f"a{i}"] = draw(_texts)
    if depth < 2 and draw(st.booleans()):
        children = draw(st.lists(element_trees(depth=depth + 1), max_size=3))
        return Element(tag, attrib=attrib, children=children)
    # text must not be whitespace-only if we want exact roundtrip (the
    # parser treats pure whitespace around children as insignificant, and
    # leaf whitespace-only text is preserved; keep it simple and strip)
    text = draw(_texts).strip()
    return Element(tag, attrib=attrib, text=text)


class TestRoundtripProperty:
    @settings(max_examples=50, deadline=None)
    @given(element_trees())
    def test_serialize_parse_identity(self, tree):
        assert parse(serialize(tree)).structurally_equal(tree)

    @settings(max_examples=25, deadline=None)
    @given(element_trees())
    def test_pretty_printed_parse(self, tree):
        reparsed = parse(serialize(tree, indent=2))
        # pretty printing may not preserve leaf text exactly when empty;
        # compare canonical forms instead
        from repro.xmllib import canonicalize

        assert canonicalize(reparsed) == canonicalize(tree)
