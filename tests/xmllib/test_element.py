"""Element tree semantics."""

import pytest

from repro.errors import XMLError
from repro.xmllib import Element


class TestConstruction:
    def test_basic(self):
        e = Element("Tag", attrib={"a": "1"}, text="hello")
        assert e.tag == "Tag" and e.get("a") == "1" and e.text == "hello"

    @pytest.mark.parametrize("bad", ["", "1tag", "ta g", "ta<g", 'ta"g'])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(XMLError):
            Element(bad)

    def test_invalid_attr_names_rejected(self):
        with pytest.raises(XMLError):
            Element("Tag", attrib={"bad attr": "v"})

    def test_valid_name_chars(self):
        Element("_tag")
        Element("ns:tag")
        Element("tag-1.2")


class TestTreeBuilding:
    def test_add_returns_child(self):
        root = Element("Root")
        child = root.add("Child", text="x")
        assert child.tag == "Child"
        assert root.children == [child]

    def test_append_rejects_non_element(self):
        with pytest.raises(XMLError):
            Element("Root").append("not an element")  # type: ignore[arg-type]

    def test_remove(self):
        root = Element("Root")
        child = root.add("Child")
        root.remove(child)
        assert root.children == []

    def test_set_get(self):
        e = Element("E")
        e.set("key", "value")
        assert e.get("key") == "value"
        assert e.get("missing") is None
        assert e.get("missing", "dflt") == "dflt"


class TestNavigation:
    def _tree(self):
        root = Element("Root")
        root.add("A", text="1")
        root.add("B", text="2")
        root.add("A", text="3")
        return root

    def test_find_first(self):
        assert self._tree().find("A").text == "1"

    def test_find_missing(self):
        assert self._tree().find("Z") is None

    def test_find_required(self):
        tree = self._tree()
        assert tree.find_required("B").text == "2"
        with pytest.raises(XMLError):
            tree.find_required("Z")

    def test_findall(self):
        assert [e.text for e in self._tree().findall("A")] == ["1", "3"]

    def test_findtext(self):
        tree = self._tree()
        assert tree.findtext("B") == "2"
        assert tree.findtext("Z", "fallback") == "fallback"

    def test_iter_preorder(self):
        root = Element("R")
        a = root.add("A")
        a.add("A1")
        root.add("B")
        assert [e.tag for e in root.iter()] == ["R", "A", "A1", "B"]


class TestCopyEquality:
    def test_deep_copy_is_independent(self):
        root = Element("R", attrib={"k": "v"})
        root.add("C", text="t")
        copy = root.deep_copy()
        assert copy.structurally_equal(root)
        copy.children[0].text = "changed"
        copy.attrib["k"] = "changed"
        assert root.children[0].text == "t"
        assert root.get("k") == "v"

    def test_structural_inequality(self):
        a = Element("R", text="x")
        assert not a.structurally_equal(Element("S", text="x"))
        assert not a.structurally_equal(Element("R", text="y"))
        assert not a.structurally_equal(Element("R", attrib={"k": "v"}, text="x"))
        b = Element("R", text="x")
        assert a.structurally_equal(b)

    def test_child_order_matters(self):
        a = Element("R", children=[Element("X"), Element("Y")])
        b = Element("R", children=[Element("Y"), Element("X")])
        assert not a.structurally_equal(b)
