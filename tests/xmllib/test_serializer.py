"""Serialization forms."""

import pytest

from repro.errors import XMLError
from repro.xmllib import Element, document, parse, serialize


class TestCompact:
    def test_empty_element_self_closes(self):
        assert serialize(Element("A")) == "<A/>"

    def test_text_element(self):
        assert serialize(Element("A", text="x")) == "<A>x</A>"

    def test_attributes_in_insertion_order(self):
        e = Element("A", attrib={"z": "1", "a": "2"})
        assert serialize(e) == '<A z="1" a="2"/>'

    def test_escaping(self):
        e = Element("A", attrib={"q": 'a"b'}, text="x & <y>")
        assert serialize(e) == '<A q="a&quot;b">x &amp; &lt;y&gt;</A>'

    def test_nested(self):
        root = Element("R")
        root.add("C", text="1")
        assert serialize(root) == "<R><C>1</C></R>"

    def test_mixed_content_rejected(self):
        bad = Element("A", text="t")
        bad.children.append(Element("B"))
        with pytest.raises(XMLError):
            serialize(bad)


class TestPretty:
    def test_indentation(self):
        root = Element("R")
        root.add("C", text="1")
        out = serialize(root, indent=2)
        assert out == "<R>\n  <C>1</C>\n</R>\n"

    def test_pretty_reparses(self):
        root = Element("R")
        child = root.add("C")
        child.add("D", text="deep")
        assert parse(serialize(root, indent=4)).structurally_equal(root)


class TestDocument:
    def test_declaration_prefix(self):
        out = document(Element("A"))
        assert out.startswith('<?xml version="1.0" encoding="UTF-8"?>')
        assert parse(out).tag == "A"
