"""Canonicalization: the byte-stability XMLdsig depends on."""

import pytest
from hypothesis import given, settings

from repro.errors import XMLError
from repro.xmllib import Element, canonicalize, parse, serialize
from tests.xmllib.test_parser import element_trees


class TestNormalization:
    def test_attribute_order_normalized(self):
        a = Element("A", attrib={"z": "1", "a": "2"})
        b = Element("A", attrib={"a": "2", "z": "1"})
        assert canonicalize(a) == canonicalize(b)

    def test_empty_element_expanded(self):
        assert canonicalize(Element("A")) == b"<A></A>"

    def test_text_escaped(self):
        assert canonicalize(Element("A", text="a<b")) == b"<A>a&lt;b</A>"

    def test_children_preserve_order(self):
        root = Element("R", children=[Element("B"), Element("A")])
        assert canonicalize(root) == b"<R><B></B><A></A></R>"

    def test_mixed_content_rejected(self):
        bad = Element("A", text="t")
        bad.children.append(Element("B"))
        with pytest.raises(XMLError):
            canonicalize(bad)


class TestStability:
    @settings(max_examples=50, deadline=None)
    @given(element_trees())
    def test_roundtrip_stable(self, tree):
        """serialize -> parse must never change the canonical form."""
        assert canonicalize(parse(serialize(tree))) == canonicalize(tree)

    @settings(max_examples=25, deadline=None)
    @given(element_trees())
    def test_double_roundtrip_stable(self, tree):
        once = parse(serialize(tree))
        twice = parse(serialize(once))
        assert canonicalize(twice) == canonicalize(tree)

    def test_whitespace_styles_agree(self):
        compact = parse("<R><A>x</A><B/></R>")
        pretty = parse("<R>\n    <A>x</A>\n    <B/>\n</R>")
        assert canonicalize(compact) == canonicalize(pretty)

    def test_content_change_changes_canonical_form(self):
        a = parse("<R><A>x</A></R>")
        b = parse("<R><A>y</A></R>")
        assert canonicalize(a) != canonicalize(b)
