"""Shared fixtures.

RSA key generation is the only expensive operation in the suite, so keys
are deterministic and cached per process.  ``TEST_POLICY`` uses 512-bit
keys with v1.5 key-wrap (OAEP-SHA256 cannot fit in a 512-bit modulus),
which keeps full protocol runs fast; targeted tests exercise 1024/2048
and OAEP explicitly.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.core import Administrator, SecureBroker, SecureClientPeer, SecurityPolicy
from repro.core.keystore import Keystore
from repro.crypto import envelope
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import KeyPair, generate_keypair
from repro.overlay import Broker, ClientPeer, UserDatabase
from repro.sim import SimNetwork, VirtualClock

TEST_POLICY = SecurityPolicy(
    rsa_bits=512,
    envelope_wrap=envelope.WRAP_V15,
    credential_lifetime=3600.0,
).validate()


@lru_cache(maxsize=None)
def cached_keypair(bits: int, label: str) -> KeyPair:
    return generate_keypair(bits, drbg=HmacDrbg(f"test-key|{bits}|{label}".encode()))


@pytest.fixture(scope="session")
def kp512() -> KeyPair:
    return cached_keypair(512, "a")


@pytest.fixture(scope="session")
def kp512_b() -> KeyPair:
    return cached_keypair(512, "b")


@pytest.fixture(scope="session")
def kp1024() -> KeyPair:
    return cached_keypair(1024, "a")


@pytest.fixture(scope="session")
def kp1024_b() -> KeyPair:
    return cached_keypair(1024, "b")


@pytest.fixture()
def drbg() -> HmacDrbg:
    return HmacDrbg(b"test-drbg")


@pytest.fixture()
def network() -> SimNetwork:
    return SimNetwork(clock=VirtualClock())


# ---------------------------------------------------------------------------
# Plain overlay world
# ---------------------------------------------------------------------------

class PlainWorld:
    """One broker + three plain clients; alice/bob share a group."""

    def __init__(self) -> None:
        self.net = SimNetwork(clock=VirtualClock())
        self.root = HmacDrbg(b"plain-world")
        self.db = UserDatabase(self.root.fork(b"db"))
        self.db.register_user("alice", "pw-a", {"students"})
        self.db.register_user("bob", "pw-b", {"students"})
        self.db.register_user("carol", "pw-c", {"teachers"})
        self.broker = Broker(self.net, "broker:0", self.db,
                             self.root.fork(b"br"), name="B0")
        self.alice = ClientPeer(self.net, "peer:alice", self.root.fork(b"al"),
                                name="alice-app")
        self.bob = ClientPeer(self.net, "peer:bob", self.root.fork(b"bo"),
                              name="bob-app")
        self.carol = ClientPeer(self.net, "peer:carol", self.root.fork(b"ca"),
                                name="carol-app")

    def join_all(self) -> None:
        for client, user, pw in ((self.alice, "alice", "pw-a"),
                                 (self.bob, "bob", "pw-b"),
                                 (self.carol, "carol", "pw-c")):
            client.connect("broker:0")
            client.login(user, pw)


@pytest.fixture()
def plain_world() -> PlainWorld:
    return PlainWorld()


@pytest.fixture()
def joined_plain_world() -> PlainWorld:
    world = PlainWorld()
    world.join_all()
    return world


# ---------------------------------------------------------------------------
# Secure overlay world
# ---------------------------------------------------------------------------

class SecureWorld:
    """Admin + secure broker + three secure clients (fast test policy)."""

    POLICY = TEST_POLICY

    def __init__(self) -> None:
        self.net = SimNetwork(clock=VirtualClock())
        self.root = HmacDrbg(b"secure-world")
        self.admin = Administrator(self.root.fork(b"admin"),
                                   keys=cached_keypair(512, "admin"))
        self.admin.register_user("alice", "pw-a", {"students"})
        self.admin.register_user("bob", "pw-b", {"students"})
        self.admin.register_user("carol", "pw-c", {"teachers"})
        self.broker = SecureBroker.create(
            self.net, "broker:0", self.admin, self.root.fork(b"br"),
            name="B0", policy=self.POLICY, keys=cached_keypair(512, "broker"))
        self.alice = self._client("alice", b"al")
        self.bob = self._client("bob", b"bo")
        self.carol = self._client("carol", b"ca")

    def _client(self, name: str, tag: bytes) -> SecureClientPeer:
        return SecureClientPeer(
            self.net, f"peer:{name}", self.root.fork(tag),
            self.admin.credential, name=f"{name}-app", policy=self.POLICY,
            keystore=Keystore(cached_keypair(512, f"client-{name}")))

    def join_all(self) -> None:
        for client, user, pw in ((self.alice, "alice", "pw-a"),
                                 (self.bob, "bob", "pw-b"),
                                 (self.carol, "carol", "pw-c")):
            client.secure_connect("broker:0")
            client.secure_login(user, pw)


#: TEST_POLICY with broker-mediated group fan-out switched on
CAST_POLICY = TEST_POLICY.with_(enable_group_cast=True)


class CastWorld(SecureWorld):
    """SecureWorld whose brokers and clients run the group-cast path."""

    POLICY = CAST_POLICY


@pytest.fixture()
def secure_world() -> SecureWorld:
    return SecureWorld()


@pytest.fixture()
def joined_secure_world() -> SecureWorld:
    world = SecureWorld()
    world.join_all()
    return world


@pytest.fixture()
def cast_world() -> CastWorld:
    world = CastWorld()
    world.join_all()
    return world
