"""End-to-end scenarios across the whole stack."""

import pytest

from repro.core import SecureClientPeer
from repro.core.keystore import Keystore
from repro.overlay import ClientPeer
from repro.sim import Scheduler
from tests.conftest import SecureWorld, cached_keypair


class TestMixedNetwork:
    """Secure and plain clients coexisting on one broker — the paper's
    deployment story (the extension coexists with the original primitives)."""

    def test_plain_client_on_secure_broker(self, secure_world):
        w = secure_world
        w.admin.register_user("dave", "pw-d", {"students"})
        dave = ClientPeer(w.net, "peer:dave", w.root.fork(b"dv"), name="dave")
        dave.connect("broker:0")
        assert dave.login("dave", "pw-d") == ["students"]

    def test_secure_client_rejects_plain_peer_advertisement(self, secure_world):
        """A secure sender cannot secure-message a plain peer: the plain
        peer's advertisement is unsigned."""
        from repro.errors import SecurityError

        w = secure_world
        w.join_all()
        w.admin.register_user("dave", "pw-d", {"students"})
        dave = ClientPeer(w.net, "peer:dave", w.root.fork(b"dv"), name="dave")
        dave.connect("broker:0")
        dave.login("dave", "pw-d")
        with pytest.raises(SecurityError):
            w.alice.secure_msg_peer(str(dave.peer_id), "students", "x")

    def test_plain_messaging_between_mixed_peers_still_works(self, secure_world):
        w = secure_world
        w.join_all()
        w.admin.register_user("dave", "pw-d", {"students"})
        dave = ClientPeer(w.net, "peer:dave", w.root.fork(b"dv"), name="dave")
        dave.connect("broker:0")
        dave.login("dave", "pw-d")
        got = []
        dave.events.subscribe("message_received", lambda **kw: got.append(kw))
        assert w.alice.send_msg_peer(str(dave.peer_id), "students",
                                     "legacy hi").ok
        assert got[0]["text"] == "legacy hi"


class TestSecureLifecycle:
    def test_full_session(self, secure_world):
        """connect -> login -> message -> files -> task -> logout."""
        w = secure_world
        w.join_all()
        got = []
        w.bob.events.subscribe("secure_message_received",
                               lambda **kw: got.append(kw))
        w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "hello")
        w.alice.secure_publish_file("students", "f.txt", b"data")
        assert w.bob.secure_search_files(group="students")
        assert w.bob.secure_request_file(str(w.alice.peer_id),
                                         "students", "f.txt") == b"data"
        w.bob.register_task("len", lambda s: str(len(s)))
        assert w.alice.secure_submit_task(str(w.bob.peer_id), "students",
                                          "len", "abcd") == "4"
        w.alice.logout()
        assert str(w.alice.peer_id) not in w.broker.connected
        assert got

    def test_relogin_after_logout(self, secure_world):
        w = secure_world
        w.alice.secure_connect("broker:0")
        w.alice.secure_login("alice", "pw-a")
        w.alice.logout()
        w.alice.secure_connect("broker:0")
        assert w.alice.secure_login("alice", "pw-a") == ["students"]

    def test_credential_expiry_blocks_messaging(self):
        """A session outliving its credential loses secure messaging."""
        world = SecureWorld()
        short = world.POLICY.with_(credential_lifetime=50.0)
        world.broker.policy = short
        world.join_all()
        world.net.clock.advance(100.0)  # credentials now expired
        from repro.errors import SecurityError

        with pytest.raises(SecurityError):
            world.alice.secure_msg_peer(str(world.bob.peer_id), "students", "x")

    def test_presence_and_secure_messaging_together(self, secure_world):
        w = secure_world
        w.join_all()
        sched = Scheduler(w.net.clock)
        w.alice.start_presence(sched, interval=10.0)
        w.bob.start_presence(sched, interval=10.0)
        sched.run_for(35.0)
        got = []
        w.bob.events.subscribe("secure_message_received",
                               lambda **kw: got.append(kw))
        assert w.alice.secure_msg_peer(str(w.bob.peer_id), "students", "still here")
        assert got


class TestMultiBrokerSecure:
    def test_secure_clients_across_linked_brokers(self, secure_world):
        from repro.core import SecureBroker

        w = secure_world
        w.join_all()
        broker2 = SecureBroker.create(
            w.net, "broker:1", w.admin, w.root.fork(b"br2"), name="B1",
            policy=w.POLICY, keys=cached_keypair(512, "broker2"))
        w.broker.link_broker(broker2)
        w.admin.register_user("erin", "pw-e", {"students"})
        erin = SecureClientPeer(
            w.net, "peer:erin", w.root.fork(b"er"), w.admin.credential,
            name="erin", policy=w.POLICY,
            keystore=Keystore(cached_keypair(512, "client-erin")))
        erin.secure_connect("broker:1")
        erin.secure_login("erin", "pw-e")
        # erin's signed pipe advertisement synced to broker 0, so alice
        # (homed on broker 0) can secure-message her
        got = []
        erin.events.subscribe("secure_message_received",
                              lambda **kw: got.append(kw))
        assert w.alice.secure_msg_peer(str(erin.peer_id), "students",
                                       "cross-broker hello")
        assert got[0]["text"] == "cross-broker hello"

    def test_brokers_have_distinct_credentials(self, secure_world):
        from repro.core import SecureBroker

        w = secure_world
        broker2 = SecureBroker.create(
            w.net, "broker:1", w.admin, w.root.fork(b"br2x"), name="B1",
            policy=w.POLICY, keys=cached_keypair(512, "broker2"))
        assert broker2.credential.subject_id != w.broker.credential.subject_id
        # both validate against the same anchor
        from repro.core.credentials import validate_chain

        validate_chain([broker2.credential], w.admin.credential, now=0.0)
        validate_chain([w.broker.credential], w.admin.credential, now=0.0)


class TestScale:
    def test_ten_secure_peers_group_chat(self):
        world = SecureWorld()
        from repro.core import SecureClientPeer

        peers = []
        for i in range(10):
            user = f"user{i}"
            world.admin.register_user(user, f"pw{i}", {"students"})
            peer = SecureClientPeer(
                world.net, f"peer:{user}", world.root.fork(b"u%d" % i),
                world.admin.credential, name=user, policy=world.POLICY,
                keystore=Keystore(cached_keypair(512, f"scale-{i}")))
            peer.secure_connect("broker:0")
            peer.secure_login(user, f"pw{i}")
            peers.append(peer)
        received = []
        for peer in peers[1:]:
            peer.events.subscribe("secure_message_received",
                                  lambda **kw: received.append(kw["text"]))
        sent = peers[0].secure_msg_peer_group("students", "broadcast")
        assert sent == 9
        assert received.count("broadcast") == 9
