"""A4 — stateless secure primitives vs TLS channel vs CBJX."""

from __future__ import annotations

import pytest

from repro.bench import baseline_comparison, fixtures, format_baselines
from repro.bench.baselines import CbjxEchoPair, TlsClientDriver, TlsEchoServer
from repro.crypto.drbg import HmacDrbg
from benchmarks.conftest import BENCH_POLICY

PAYLOAD = b"y" * 1_000


def test_bench_tls_handshake(benchmark):
    """The negotiation cost the paper's stateless design avoids (§4.3)."""
    net = fixtures.fresh_network()
    keys = fixtures.cached_keypair(1024, "tls-server")
    TlsEchoServer(net, "srv", keys, HmacDrbg(b"bench-tls-s"))
    counter = [0]

    def run():
        counter[0] += 1
        driver = TlsClientDriver(net, f"cli{counter[0]}", "srv",
                                 HmacDrbg(b"bench-tls-c%d" % counter[0]))
        driver.handshake()

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_bench_tls_record(benchmark):
    net = fixtures.fresh_network()
    keys = fixtures.cached_keypair(1024, "tls-server")
    TlsEchoServer(net, "srv", keys, HmacDrbg(b"bench-tls-s2"))
    driver = TlsClientDriver(net, "cli", "srv", HmacDrbg(b"bench-tls-c2"))
    driver.handshake()
    benchmark(lambda: driver.echo(PAYLOAD))


def test_bench_cbjx_message(benchmark):
    net = fixtures.fresh_network()
    pair = CbjxEchoPair(net, "a", "b",
                        fixtures.cached_keypair(1024, "cbjx-a"),
                        fixtures.cached_keypair(1024, "cbjx-b"),
                        HmacDrbg(b"bench-cbjx"))
    benchmark(lambda: pair.send_a_to_b(PAYLOAD))


def test_bench_stateless_secure_message(benchmark):
    net, admin, broker, clients = fixtures.build_secure_world(
        n_clients=2, policy=BENCH_POLICY, seed=b"bench-a4-stateless",
        joined=True)
    alice, bob = clients
    alice.secure_msg_peer(str(bob.peer_id), "bench", "warmup")
    benchmark(
        lambda: alice.secure_msg_peer(str(bob.peer_id), "bench",
                                      PAYLOAD.decode()))


def test_a4_crossover_report(capsys):
    """TLS amortizes its handshake: for long conversations it must beat
    the stateless scheme; for a single message the stateless scheme is
    competitive (no negotiation round trips)."""
    points = baseline_comparison(message_counts=(1, 5, 20),
                                 policy=BENCH_POLICY)
    with capsys.disabled():
        print()
        print(format_baselines(points, size_bytes=1_000))
    per_msg_stateless = points[-1].stateless_s / points[-1].n_messages
    per_msg_tls = points[-1].tls_s / points[-1].n_messages
    assert per_msg_tls < per_msg_stateless, (
        "TLS records must be cheaper per message once the channel exists")
