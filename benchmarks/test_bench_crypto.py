"""A1 — crypto micro-benchmarks (the primitives E1/E2 are built from)."""

from __future__ import annotations

import pytest

from repro.bench.fixtures import cached_keypair
from repro.crypto import envelope, pkcs1, signing
from repro.crypto.chacha20 import chacha20_xor
from repro.crypto.drbg import HmacDrbg
from repro.crypto.modes import CBC
from repro.crypto.sha2 import SHA256, sha256

KP1024 = cached_keypair(1024, "bench-micro")
KP2048 = cached_keypair(2048, "bench-micro")
MSG = b"m" * 1024
DRBG = HmacDrbg(b"bench-micro")


class TestRsa:
    def test_bench_rsa1024_sign_pss(self, benchmark):
        benchmark(lambda: pkcs1.sign_pss(KP1024.private, MSG, drbg=DRBG))

    def test_bench_rsa1024_verify_pss(self, benchmark):
        sig = pkcs1.sign_pss(KP1024.private, MSG)
        benchmark(lambda: pkcs1.verify_pss(KP1024.public, MSG, sig))

    def test_bench_rsa2048_sign_pss(self, benchmark):
        benchmark(lambda: pkcs1.sign_pss(KP2048.private, MSG, drbg=DRBG))

    def test_bench_rsa1024_oaep_wrap(self, benchmark):
        benchmark(lambda: pkcs1.encrypt_oaep(KP1024.public, b"k" * 32, drbg=DRBG))

    def test_bench_rsa1024_oaep_unwrap(self, benchmark):
        ct = pkcs1.encrypt_oaep(KP1024.public, b"k" * 32)
        benchmark(lambda: pkcs1.decrypt_oaep(KP1024.private, ct))


class TestSymmetric:
    @pytest.mark.parametrize("size", [1_024, 65_536])
    def test_bench_chacha20(self, benchmark, size):
        key, nonce, data = b"k" * 32, b"n" * 12, b"d" * size
        benchmark(lambda: chacha20_xor(key, nonce, data))

    @pytest.mark.parametrize("size", [1_024, 65_536])
    def test_bench_aes_cbc(self, benchmark, size):
        cbc = CBC(b"k" * 16)
        data, iv = b"d" * size, b"i" * 16
        benchmark(lambda: cbc.encrypt(data, iv))

    @pytest.mark.parametrize("size", [1_024, 65_536])
    def test_bench_sha256_accelerated(self, benchmark, size):
        data = b"d" * size
        benchmark(lambda: sha256(data))

    def test_bench_sha256_pure(self, benchmark):
        data = b"d" * 1_024
        benchmark(lambda: SHA256(data).digest())


class TestEnvelope:
    @pytest.mark.parametrize("size", [1_024, 65_536])
    def test_bench_envelope_seal(self, benchmark, size):
        data = b"d" * size
        benchmark(lambda: envelope.seal(KP1024.public, data, drbg=DRBG))

    def test_bench_envelope_open(self, benchmark):
        env = envelope.seal(KP1024.public, b"d" * 1_024)
        benchmark(lambda: envelope.open_(KP1024.private, env))


class TestCbidCheck:
    def test_bench_cbid_check(self, benchmark):
        """DESIGN.md ablation 3: the CBID check is ~free vs a signature."""
        from repro.jxta.ids import cbid_from_key, matches_key

        cbid = cbid_from_key(KP1024.public)
        benchmark(lambda: matches_key(cbid, KP1024.public))

    def test_bench_signature_verify_for_contrast(self, benchmark):
        sig = signing.sign(KP1024.private, MSG)
        benchmark(lambda: signing.verify(KP1024.public, MSG, sig))
