"""E2 — Figure 2: secureMsgPeer overhead vs message data length."""

from __future__ import annotations

import pytest

from repro.bench import format_msg_overhead, msg_overhead_curve
from benchmarks.conftest import BENCH_POLICY

SIZES = (100, 1_000, 10_000, 100_000)


@pytest.mark.parametrize("size", SIZES)
def test_bench_plain_msg(benchmark, plain_pair, size):
    """sendMsgPeer at each Figure-2 data length."""
    net, alice, bob = plain_pair
    text = "x" * size
    benchmark.pedantic(
        lambda: alice.send_msg_peer(str(bob.peer_id), "bench", text),
        rounds=5, iterations=1)


@pytest.mark.parametrize("size", SIZES)
def test_bench_secure_msg(benchmark, secure_pair, size):
    """secureMsgPeer at each Figure-2 data length."""
    net, alice, bob = secure_pair
    text = "x" * size
    benchmark.pedantic(
        lambda: alice.secure_msg_peer(str(bob.peer_id), "bench", text),
        rounds=5, iterations=1)


def test_figure2_shape(capsys):
    """The reproducible claim of Figure 2: relative overhead is high for
    small messages and falls as the data length grows."""
    curve = msg_overhead_curve(sizes=(100, 1_000, 10_000, 100_000, 1_000_000),
                               policy=BENCH_POLICY, repeats=3)
    with capsys.disabled():
        print()
        print(format_msg_overhead(curve))
    assert curve.monotone_decreasing_tail(), (
        "overhead must fall with message size (Figure 2)")
    assert curve.points[0].overhead_pct > curve.points[-1].overhead_pct * 2
