"""A2 — policy ablations: key size, cipher suite, wrap algorithm, plus
the signed-advertisement validation cache (DESIGN.md ablation 4)."""

from __future__ import annotations

import pytest

from repro.bench import fixtures, format_policy_ablation, policy_ablation
from repro.core.policy import SecurityPolicy
from repro.crypto import envelope


@pytest.mark.parametrize("label,policy", [
    ("rsa1024-chacha-oaep", SecurityPolicy(rsa_bits=1024)),
    ("rsa1024-aescbc-v15", SecurityPolicy(
        rsa_bits=1024, envelope_suite="aes128-cbc",
        envelope_wrap=envelope.WRAP_V15,
        signature_scheme="rsa-pkcs1v15-sha256")),
    ("rsa2048-chacha-oaep", SecurityPolicy(rsa_bits=2048)),
])
def test_bench_secure_msg_by_policy(benchmark, label, policy):
    net, admin, broker, clients = fixtures.build_secure_world(
        n_clients=2, policy=policy.validate(),
        seed=b"bench-a2-" + label.encode(), joined=True)
    alice, bob = clients
    text = "z" * 10_000
    alice.secure_msg_peer(str(bob.peer_id), "bench", "warmup")
    benchmark.pedantic(
        lambda: alice.secure_msg_peer(str(bob.peer_id), "bench", text),
        rounds=5, iterations=1)


@pytest.mark.parametrize("cache", [True, False], ids=["cache-on", "cache-off"])
def test_bench_adv_validation_cache(benchmark, cache):
    """DESIGN.md ablation 4: caching signed-advertisement validation."""
    policy = SecurityPolicy(rsa_bits=1024, cache_validated_advs=cache)
    net, admin, broker, clients = fixtures.build_secure_world(
        n_clients=2, policy=policy,
        seed=b"bench-cache-%d" % cache, joined=True)
    alice, bob = clients
    alice.secure_msg_peer(str(bob.peer_id), "bench", "warmup")
    benchmark.pedantic(
        lambda: alice.secure_msg_peer(str(bob.peer_id), "bench", "hi"),
        rounds=5, iterations=1)


def test_a2_report(capsys):
    rows = policy_ablation()
    with capsys.disabled():
        print()
        print(format_policy_ablation(rows))
    by_label = {r.label: r for r in rows}
    # bigger keys must cost more on the join (more RSA work)
    assert (by_label["rsa2048+chacha(oaep)"].join_secure_s
            > by_label["rsa1024+chacha(oaep)"].join_secure_s)
