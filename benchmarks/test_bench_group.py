"""A3 — secureMsgPeerGroup scaling with group size."""

from __future__ import annotations

import pytest

from repro.bench import fixtures, format_group_scaling, group_scaling
from benchmarks.conftest import BENCH_POLICY


@pytest.mark.parametrize("members", [2, 4, 8])
def test_bench_secure_group_send(benchmark, members):
    net, admin, broker, clients = fixtures.build_secure_world(
        n_clients=members, policy=BENCH_POLICY,
        seed=b"bench-a3-%d" % members, joined=True)
    sender = clients[0]
    sender.secure_msg_peer_group("bench", "warmup")
    benchmark.pedantic(
        lambda: sender.secure_msg_peer_group("bench", "hello group"),
        rounds=3, iterations=1)


@pytest.mark.parametrize("members", [2, 4, 8])
def test_bench_plain_group_send(benchmark, members):
    net, broker, clients = fixtures.build_plain_world(
        n_clients=members, seed=b"bench-a3p-%d" % members)
    fixtures.join_plain(clients)
    sender = clients[0]
    benchmark.pedantic(
        lambda: sender.send_msg_peer_group("bench", "hello group"),
        rounds=3, iterations=1)


def test_a3_report(capsys):
    points = group_scaling(group_sizes=(2, 4, 8), policy=BENCH_POLICY)
    with capsys.disabled():
        print()
        print(format_group_scaling(points))
    # linear-ish scaling: 8 members cost more than 2
    assert points[-1].secure_s > points[0].secure_s
