"""pytest-benchmark targets for the paper's evaluation (see DESIGN.md)."""
