"""E1 — the §5 join-overhead experiment (paper: 81.76 %).

Benchmarks the two join paths separately (pytest-benchmark needs one
operation per target) and asserts the overhead relation in a summary
test that prints the paper-style row.
"""

from __future__ import annotations

import pytest

from repro.bench import fixtures, format_join_overhead, join_overhead
from repro.bench.experiments import PAPER_JOIN_OVERHEAD_PCT
from benchmarks.conftest import BENCH_POLICY


def _fresh_plain_join():
    net, broker, clients = fixtures.build_plain_world(
        n_clients=1, seed=b"bench-e1-plain")
    client = clients[0]
    client.connect("broker:0")
    client.login("user0", "pw0")


def _fresh_secure_join():
    net, admin, broker, clients = fixtures.build_secure_world(
        n_clients=1, policy=BENCH_POLICY, seed=b"bench-e1-secure")
    client = clients[0]
    client.secure_connect("broker:0")
    client.secure_login("user0", "pw0")


def test_bench_plain_join(benchmark):
    """connect + login (the insecure baseline of E1)."""
    benchmark.pedantic(_fresh_plain_join, rounds=5, iterations=1)


def test_bench_secure_join(benchmark):
    """secureConnection + secureLogin (the paper's §4.2)."""
    benchmark.pedantic(_fresh_secure_join, rounds=5, iterations=1)


def test_e1_overhead_report(capsys):
    """Regenerate the §5 sentence and check the qualitative claim:
    the secure join costs measurably more, in the same order of
    magnitude regime the paper reports (tens of percent to a few x)."""
    result = join_overhead(policy=BENCH_POLICY, repeats=3)
    with capsys.disabled():
        print()
        print(format_join_overhead(result))
    assert result.overhead_pct > 0, "secure join must cost more than plain"
    # sanity ceiling: if secure join were >100x plain something regressed
    assert result.overhead_pct < 10_000
    assert result.paper_overhead_pct == PAPER_JOIN_OVERHEAD_PCT
