"""Benchmark-suite fixtures: pre-joined worlds, reused across benchmarks.

The benchmark policy is the paper's RSA-1024; keys come from the process
cache in :mod:`repro.bench.fixtures` so only the measured operations pay
crypto cost.
"""

from __future__ import annotations

import pytest

from repro.bench import fixtures
from repro.core.policy import SecurityPolicy

BENCH_POLICY = SecurityPolicy(rsa_bits=1024).validate()


@pytest.fixture(scope="module")
def plain_pair():
    """(net, sender, receiver) joined on a plain broker."""
    net, broker, clients = fixtures.build_plain_world(
        n_clients=2, seed=b"bench-plain-pair")
    fixtures.join_plain(clients)
    return net, clients[0], clients[1]


@pytest.fixture(scope="module")
def secure_pair():
    """(net, sender, receiver) joined on a secure broker, warm caches."""
    net, admin, broker, clients = fixtures.build_secure_world(
        n_clients=2, policy=BENCH_POLICY, seed=b"bench-secure-pair",
        joined=True)
    clients[0].secure_msg_peer(str(clients[1].peer_id), "bench", "warmup")
    return net, clients[0], clients[1]
