"""Benchmark-suite fixtures: pre-joined worlds, reused across benchmarks.

The benchmark policy is the paper's RSA-1024; keys come from the process
cache in :mod:`repro.bench.fixtures` so only the measured operations pay
crypto cost.

At session end every benchmark's statistics are persisted to
``BENCH_<name>.json`` next to the rootdir (previously the numbers only
lived in the terminal report), and the accumulated observability
registry is dumped as ``BENCH_OBS.json``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro import obs
from repro.bench import fixtures
from repro.bench.experiments import obs_snapshot_report
from repro.core.policy import SecurityPolicy

BENCH_POLICY = SecurityPolicy(rsa_bits=1024).validate()


def _safe_name(fullname: str) -> str:
    """'benchmarks/test_x.py::test_y[1000]' -> 'test_y_1000'."""
    return re.sub(r"[^A-Za-z0-9.-]+", "_", fullname.split("::")[-1]).strip("_")


def pytest_sessionfinish(session, exitstatus):
    root = Path(str(session.config.rootpath))
    bs = getattr(session.config, "_benchmarksession", None)
    wrote_any = False
    for bench in getattr(bs, "benchmarks", None) or []:
        try:
            data = bench.as_dict(include_data=False, flat=True)
        except Exception:
            continue  # a benchmark that never ran has no stats
        out = root / f"BENCH_{_safe_name(bench.fullname)}.json"
        out.write_text(json.dumps(data, indent=2, sort_keys=True, default=str)
                       + "\n", encoding="utf-8")
        wrote_any = True
    registry = obs.get_registry()
    if wrote_any and registry.enabled:
        data = obs_snapshot_report(registry, meta={
            "experiment": "pytest-benchmarks",
            "rsa_bits": BENCH_POLICY.rsa_bits,
        })
        (root / "BENCH_OBS.json").write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")


@pytest.fixture(scope="module")
def plain_pair():
    """(net, sender, receiver) joined on a plain broker."""
    net, broker, clients = fixtures.build_plain_world(
        n_clients=2, seed=b"bench-plain-pair")
    fixtures.join_plain(clients)
    return net, clients[0], clients[1]


@pytest.fixture(scope="module")
def secure_pair():
    """(net, sender, receiver) joined on a secure broker, warm caches."""
    net, admin, broker, clients = fixtures.build_secure_world(
        n_clients=2, policy=BENCH_POLICY, seed=b"bench-secure-pair",
        joined=True)
    clients[0].secure_msg_peer(str(clients[1].peer_id), "bench", "warmup")
    return net, clients[0], clients[1]
