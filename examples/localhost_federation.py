#!/usr/bin/env python
"""Two secure brokers federated over real 127.0.0.1 sockets.

The transport-agnostic endpoint runtime means the entire secure
overlay — broker federation, secureConnection, secureLogin, sealed
messaging with session resumption — runs unchanged on the asyncio TCP
backend.  This demo drives the full flow over loopback sockets:

1. two :class:`~repro.core.SecureBroker`\\ s come up, each on its own
   OS-assigned TCP port, and federate (``fed_link`` handshake with the
   nested digest sync — real concurrent requests on real sockets);
2. alice joins broker:0 and bob joins broker:1 with the complete
   secure join: secureConnection (challenge-response, one-shot sid)
   then secureLogin (credential chain verification);
3. alice sends bob two sealed messages across the federation — the
   first establishes the messaging session (RSA envelope), the second
   rides the resumed session (0-RSA steady state);
4. everything shuts down cleanly: endpoints drain their connections,
   the transport tears down its event loop.

Run it from the repo root::

    PYTHONPATH=src python examples/localhost_federation.py

Exits 0 when every step verified, non-zero otherwise.
"""

from __future__ import annotations

import sys
import threading

from repro.core import (
    Administrator,
    SecureBroker,
    SecureClientPeer,
    SecurityPolicy,
)
from repro.core.keystore import Keystore
from repro.crypto import envelope
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import KeyPair, generate_keypair
from repro.net import TcpTransport

#: 512-bit keys + v1.5 wrap keep the demo snappy; the protocol flow is
#: identical to the production 2048/OAEP policy.
POLICY = SecurityPolicy(
    rsa_bits=512,
    envelope_wrap=envelope.WRAP_V15,
    credential_lifetime=3600.0,
).validate()

RECEIVE_TIMEOUT_S = 30.0


def keypair(label: bytes) -> KeyPair:
    return generate_keypair(
        POLICY.rsa_bits, drbg=HmacDrbg(b"localhost-demo|" + label))


def main() -> int:
    root = HmacDrbg(b"localhost-federation")
    admin = Administrator(root.fork(b"admin"), keys=keypair(b"admin"))
    admin.register_user("alice", "pw-a", {"students"})
    admin.register_user("bob", "pw-b", {"students"})

    with TcpTransport() as net:
        print("== localhost federation over asyncio TCP ==")
        b0 = SecureBroker.create(net, "broker:0", admin, root.fork(b"b0"),
                                 name="B0", policy=POLICY, keys=keypair(b"b0"))
        b1 = SecureBroker.create(net, "broker:1", admin, root.fork(b"b1"),
                                 name="B1", policy=POLICY, keys=keypair(b"b1"))
        for address in ("broker:0", "broker:1"):
            host, port = net.location(address)
            print(f"   {address} listening on {host}:{port}")

        b0.link_broker("broker:1")
        print("   brokers federated (fed_link handshake + digest sync)")

        alice = SecureClientPeer(net, "peer:alice", root.fork(b"al"),
                                 admin.credential, name="alice-app",
                                 policy=POLICY,
                                 keystore=Keystore(keypair(b"alice")))
        bob = SecureClientPeer(net, "peer:bob", root.fork(b"bo"),
                               admin.credential, name="bob-app",
                               policy=POLICY,
                               keystore=Keystore(keypair(b"bob")))

        received: list[str] = []
        both_arrived = threading.Event()

        def on_message(**kw) -> None:
            received.append(kw["text"])
            if len(received) >= 2:
                both_arrived.set()

        bob.events.subscribe("secure_message_received", on_message)

        alice.secure_connect("broker:0")
        alice.secure_login("alice", "pw-a")
        print("   alice: secureConnection + secureLogin on broker:0")
        bob.secure_connect("broker:1")
        bob.secure_login("bob", "pw-b")
        print("   bob:   secureConnection + secureLogin on broker:1")

        sent_first = alice.secure_msg_peer(str(bob.peer_id), "students",
                                           "hello over sockets")
        sent_resumed = alice.secure_msg_peer(str(bob.peer_id), "students",
                                             "resumed hello")
        delivered = both_arrived.wait(RECEIVE_TIMEOUT_S)
        print(f"   cross-broker sends: first={sent_first} "
              f"resumed={sent_resumed}")
        print(f"   bob received: {received}")

        for node in (alice, bob, b0, b1):
            node.control.close()
        print("   endpoints drained and closed")

        ok = (sent_first and sent_resumed and delivered
              and received == ["hello over sockets", "resumed hello"]
              and not net.is_registered("peer:alice")
              and not net.is_registered("broker:0"))

    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
