#!/usr/bin/env python
"""The §2.3 threat analysis, executed.

Runs each vulnerability the paper lists against BOTH stacks side by side:

1. eavesdropping the login password and chat,
2. advertisement forgery by a legitimate insider,
3. a fake broker behind DNS spoofing,
4. login replay,
5. in-flight message tampering,
6. a compromised member key (handled by the revocation extension).

For each attack the plain JXTA-Overlay primitives fall over and the
security-aware primitives hold — which is precisely the paper's claim.

Run:  python examples/attack_resilience.py
"""

from repro.attacks import (
    Eavesdropper,
    FakeBroker,
    LoginReplayer,
    TamperCampaign,
    byte_substitution,
    forge_pipe_advertisement,
    forge_signed_advertisement,
    spoof_dns,
)
from repro.core import Administrator, SecureBroker, SecureClientPeer, SecurityPolicy
from repro.crypto.drbg import HmacDrbg
from repro.errors import BrokerAuthenticationError, SecurityError
from repro.jxta.messages import Message
from repro.overlay import Broker, ClientPeer
from repro.sim import SimNetwork

POLICY = SecurityPolicy(rsa_bits=1024)


def verdict(attack: str, plain_outcome: str, secure_outcome: str) -> None:
    print(f"{attack:28s} plain: {plain_outcome:34s} secure: {secure_outcome}")


def build_plain():
    root = HmacDrbg(b"attack-plain")
    net = SimNetwork()
    from repro.overlay import UserDatabase

    db = UserDatabase(root.fork(b"db"))
    db.register_user("alice", "pw-a", {"g"})
    db.register_user("bob", "pw-b", {"g"})
    broker = Broker(net, "broker:0", db, root.fork(b"br"), name="B0")
    alice = ClientPeer(net, "peer:alice", root.fork(b"al"), name="alice")
    bob = ClientPeer(net, "peer:bob", root.fork(b"bo"), name="bob")
    return root, net, broker, alice, bob


def build_secure():
    root = HmacDrbg(b"attack-secure")
    net = SimNetwork()
    admin = Administrator(root.fork(b"admin"), bits=POLICY.rsa_bits)
    admin.register_user("alice", "pw-a", {"g"})
    admin.register_user("bob", "pw-b", {"g"})
    broker = SecureBroker.create(net, "broker:0", admin, root.fork(b"br"),
                                 name="B0", policy=POLICY)
    alice = SecureClientPeer(net, "peer:alice", root.fork(b"al"),
                             admin.credential, name="alice", policy=POLICY)
    bob = SecureClientPeer(net, "peer:bob", root.fork(b"bo"),
                           admin.credential, name="bob", policy=POLICY)
    return root, net, admin, broker, alice, bob


# 1. ---- eavesdropping ---------------------------------------------------------
_, net, _, alice, bob = build_plain()
spy = Eavesdropper().attach(net)
alice.connect("broker:0"); alice.login("alice", "pw-a")
bob.connect("broker:0"); bob.login("bob", "pw-b")
alice.send_msg_peer(str(bob.peer_id), "g", "meet at noon")
plain_out = (f"password {'LEAKED' if spy.saw_text('pw-a') else 'safe'}, "
             f"chat {'LEAKED' if spy.saw_text('meet at noon') else 'safe'}")

_, snet, _, _, salice, sbob = build_secure()
sspy = Eavesdropper().attach(snet)
salice.secure_connect("broker:0"); salice.secure_login("alice", "pw-a")
sbob.secure_connect("broker:0"); sbob.secure_login("bob", "pw-b")
salice.secure_msg_peer(str(sbob.peer_id), "g", "meet at noon")
secure_out = (f"password {'LEAKED' if sspy.saw_text('pw-a') else 'safe'}, "
              f"chat {'LEAKED' if sspy.saw_text('meet at noon') else 'safe'}")
verdict("1. eavesdropping", plain_out, secure_out)

# 2. ---- advertisement forgery ---------------------------------------------------
root, net, _, alice, bob = build_plain()
alice.connect("broker:0"); alice.login("alice", "pw-a")
bob.connect("broker:0"); bob.login("bob", "pw-b")
from repro.jxta.endpoint import Endpoint

stolen = []
mallory_ep = Endpoint(net, "peer:mallory")
mallory_ep.on("pipe_data", lambda m, s: stolen.append(m) or None)
forged = forge_pipe_advertisement(str(bob.peer_id), "g", "peer:mallory",
                                  root.fork(b"forge"))
push = Message("adv_push"); push.add_xml("adv", forged)
net.send("peer:mallory", "peer:alice", push.to_wire())
alice.send_msg_peer(str(bob.peer_id), "g", "for bob only")
plain_out = "messages HIJACKED" if stolen else "safe"

root, snet, _, _, salice, sbob = build_secure()
salice.secure_connect("broker:0"); salice.secure_login("alice", "pw-a")
sbob.secure_connect("broker:0"); sbob.secure_login("bob", "pw-b")
sforged = forge_signed_advertisement(str(sbob.peer_id), "g", "peer:mallory2",
                                     salice.keystore, root.fork(b"f2"))
salice.control.cache.publish(sforged)
try:
    salice.secure_msg_peer(str(sbob.peer_id), "g", "for bob only")
    secure_out = "messages HIJACKED"
except SecurityError:
    secure_out = "forgery rejected (CBID)"
verdict("2. advertisement forgery", plain_out, secure_out)

# 3. ---- fake broker (DNS spoofing) ----------------------------------------------
root, net, _, alice, _ = build_plain()
fake = FakeBroker(net, "broker:fake", root.fork(b"fk"))
net.add_interceptor(spoof_dns("broker:0", "broker:fake"))
alice.connect("broker:0"); alice.login("alice", "pw-a")
plain_out = ("password HARVESTED by impostor" if fake.harvested
             else "safe")

root, snet, _, _, salice, _ = build_secure()
sfake = FakeBroker(snet, "broker:fake", root.fork(b"fk"))
snet.add_interceptor(spoof_dns("broker:0", "broker:fake"))
try:
    salice.secure_connect("broker:0")
    secure_out = "fooled"
except BrokerAuthenticationError:
    secure_out = "impostor rejected (step 6/7)"
verdict("3. fake broker / DNS spoof", plain_out, secure_out)

# 4. ---- login replay ---------------------------------------------------------------
root, net, broker, alice, _ = build_plain()
replayer = LoginReplayer("peer:mallory").attach(net)
net.register("peer:mallory", lambda f: None)
alice.connect("broker:0"); alice.login("alice", "pw-a")
wins = LoginReplayer.successes(replayer.replay_all(net))
plain_out = "replay ACCEPTED (impersonation)" if wins else "safe"

root, snet, _, sbroker, salice, _ = build_secure()
sreplayer = LoginReplayer("peer:mallory").attach(snet)
snet.register("peer:mallory", lambda f: None)
salice.secure_connect("broker:0"); salice.secure_login("alice", "pw-a")
swins = LoginReplayer.successes(sreplayer.replay_all(snet))
secure_out = ("replay ACCEPTED" if swins
              else f"blocked by sid ({sbroker.sids.replays_blocked} attempts)")
verdict("4. login replay", plain_out, secure_out)

# 5. ---- in-flight tampering ---------------------------------------------------------
root, net, _, alice, bob = build_plain()
alice.connect("broker:0"); alice.login("alice", "pw-a")
bob.connect("broker:0"); bob.login("bob", "pw-b")
received = []
bob.events.subscribe("message_received", lambda **kw: received.append(kw["text"]))
with TamperCampaign(net) as campaign:
    campaign.install(byte_substitution(b"noon", b"dawn"))
    alice.send_msg_peer(str(bob.peer_id), "g", "meet at noon")
plain_out = (f"delivered ALTERED text {received[0]!r}" if received
             else "dropped")

root, snet, _, _, salice, sbob = build_secure()
salice.secure_connect("broker:0"); salice.secure_login("alice", "pw-a")
sbob.secure_connect("broker:0"); sbob.secure_login("bob", "pw-b")
sreceived, srejected = [], []
sbob.events.subscribe("secure_message_received",
                      lambda **kw: sreceived.append(kw["text"]))
sbob.events.subscribe("message_rejected", lambda **kw: srejected.append(kw))
with TamperCampaign(snet) as campaign:
    from repro.attacks import bit_flipper

    campaign.install(bit_flipper(dst_filter="peer:bob"))
    salice.secure_msg_peer(str(sbob.peer_id), "g", "meet at noon")
secure_out = ("delivered ALTERED text" if sreceived
              else "tampering detected, message refused")
verdict("5. message tampering", plain_out, secure_out)

# 6. ---- compromised member (revocation, §6 further work) --------------------------
root, snet, _, sbroker, salice, sbob = build_secure()
salice.secure_connect("broker:0"); salice.secure_login("alice", "pw-a")
sbob.secure_connect("broker:0"); sbob.secure_login("bob", "pw-b")
salice.secure_msg_peer(str(sbob.peer_id), "g", "before compromise")  # works
sbroker.revocations.revoke(str(sbob.peer_id))   # bob's key leaked: revoke
sbroker.publish_revocations()
try:
    salice.secure_msg_peer(str(sbob.peer_id), "g", "after compromise")
    secure_out = "still trusted bob"
except SecurityError:
    secure_out = "revoked credential refused"
verdict("6. compromised member", "no concept of revocation", secure_out)
