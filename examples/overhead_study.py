#!/usr/bin/env python
"""Reproduce the paper's §5 cost study (E1 + E2/Figure 2) plus ablations.

Prints, in order:

* **E1** — join overhead (plain connect+login vs secureConnection+
  secureLogin), across three link profiles.  The paper reports 81.76%
  on its 2009 Java/JCE testbed; the measured ratio depends on how much
  the *plain* join costs, so the link-profile sweep shows the regime
  dependence explicitly.
* **E2** — Figure 2: secureMsgPeer overhead vs message size.  The shape
  (high for small messages, falling as transmission dominates) is the
  reproducible claim.
* Ablations A2-A4 from DESIGN.md.

Run:  python examples/overhead_study.py [--quick]
"""

import sys

from repro.bench import (
    baseline_comparison,
    format_baselines,
    format_group_scaling,
    format_join_overhead,
    format_msg_overhead,
    format_policy_ablation,
    group_scaling,
    join_overhead,
    msg_overhead_curve,
    policy_ablation,
)
from repro.sim.latency import PROFILES

quick = "--quick" in sys.argv

print("=" * 72)
print("E1: join overhead across link profiles (paper: 81.76 %)")
print("=" * 72)
for name in ("loopback", "lan2009", "campus", "wan-adsl"):
    result = join_overhead(link=PROFILES[name], link_name=name,
                           repeats=2 if quick else 3)
    print(format_join_overhead(result))
    print()

print("=" * 72)
print("E2: Figure 2 — secureMsgPeer overhead vs data length")
print("=" * 72)
sizes = (100, 1_000, 10_000, 100_000) if quick else \
    (100, 1_000, 10_000, 100_000, 1_000_000)
print(format_msg_overhead(msg_overhead_curve(sizes=sizes,
                                             repeats=2 if quick else 3)))
print()

print("=" * 72)
print("Ablations (DESIGN.md A2-A4)")
print("=" * 72)
print(format_group_scaling(group_scaling(
    group_sizes=(2, 4, 8) if quick else (2, 4, 8, 16))))
print()
print(format_baselines(baseline_comparison(
    message_counts=(1, 5, 10) if quick else (1, 2, 5, 10, 50)),
    size_bytes=1_000))
print()
print(format_policy_ablation(policy_ablation()))
