#!/usr/bin/env python
"""An e-learning deployment: the scenario that motivated JXTA-Overlay.

The paper's introduction cites P2P e-learning (ref [2], the authors' own
system) as the kind of application that outgrew file sharing and now
needs security.  This example models a small course:

* a teacher and three students, in overlapping groups
  ("course-101" for everyone, "staff" for the teacher),
* secure group chat announcements,
* signed course-material distribution (secure file sharing),
* a graded exercise submitted through the secure executable primitives
  with an ACL so only enrolled students may trigger grading.

Run:  python examples/e_learning_groups.py
"""

from repro.core import Administrator, SecureBroker, SecureClientPeer, SecurityPolicy
from repro.crypto.drbg import HmacDrbg
from repro.sim import Scheduler, SimNetwork

root = HmacDrbg(b"e-learning")
network = SimNetwork()
scheduler = Scheduler(network.clock)
policy = SecurityPolicy(rsa_bits=1024)

# --- provisioning -----------------------------------------------------------
admin = Administrator(root.fork(b"admin"), bits=1024)
admin.register_user("prof", "prof-pw", groups={"course-101", "staff"})
for name in ("ana", "ben", "chris"):
    admin.register_user(name, f"{name}-pw", groups={"course-101"})

broker = SecureBroker.create(network, "broker:uni", admin,
                             root.fork(b"broker"), name="campus-broker",
                             policy=policy)

peers = {}
for name in ("prof", "ana", "ben", "chris"):
    peer = SecureClientPeer(network, f"peer:{name}", root.fork(name.encode()),
                            admin.credential, name=name, policy=policy)
    peer.secure_connect("broker:uni")
    peer.secure_login(name, f"{name}-pw")
    peer.start_presence(scheduler, interval=30.0)
    peers[name] = peer

prof, ana, ben, chris = (peers[n] for n in ("prof", "ana", "ben", "chris"))
print(f"joined: {sorted(peers)}; groups on broker: {prof.list_groups()}")

# --- secure course announcement -----------------------------------------------
for student in (ana, ben, chris):
    student.events.subscribe(
        "secure_message_received",
        lambda from_user, text, group, from_peer, who=student.name: print(
            f"  [{who}] {from_user}@{group}: {text}"))

n = prof.secure_msg_peer_group("course-101", "Lecture notes are up; quiz Friday.")
print(f"announcement delivered to {n} students (encrypted + signed each)")

# --- signed course material ----------------------------------------------------
notes = b"Chapter 3: security-aware P2P middleware...\n" * 50
prof.secure_publish_file("course-101", "chapter-3.txt", notes)
offers = ana.secure_search_files(group="course-101")
print(f"ana sees validated offers: {[o.file_name for o in offers]}")
fetched = ana.secure_request_file(str(prof.peer_id), "course-101",
                                  "chapter-3.txt")
assert fetched == notes
print(f"ana fetched {len(fetched)} bytes; digest matched the signed offer")

# --- graded exercise through secure exec ---------------------------------------
def grade(answer: str) -> str:
    return "PASS" if answer.strip() == "42" else "FAIL"

prof.register_task("grade-ex1", grade)
prof.set_task_acl({"ana", "ben", "chris"})       # students only

print("ben submits '41':", ben.secure_submit_task(
    str(prof.peer_id), "course-101", "grade-ex1", "41"))
print("ana submits '42':", ana.secure_submit_task(
    str(prof.peer_id), "course-101", "grade-ex1", "42"))

# an outsider with a valid account but not in the ACL is refused
admin.register_user("visitor", "visitor-pw", groups={"course-101"})
visitor = SecureClientPeer(network, "peer:visitor", root.fork(b"visitor"),
                           admin.credential, name="visitor", policy=policy)
visitor.secure_connect("broker:uni")
visitor.secure_login("visitor", "visitor-pw")
try:
    visitor.secure_submit_task(str(prof.peer_id), "course-101",
                               "grade-ex1", "42")
except Exception as exc:
    print(f"visitor refused: {exc}")

# --- presence keeps the roster fresh ----------------------------------------------
scheduler.run_for(120.0)
online = [p for p in peers if broker.connected.get(str(peers[p].peer_id))]
print(f"after 120 s of virtual time, online: {sorted(online)}")
print(f"virtual clock: {network.clock.now:.2f} s")
