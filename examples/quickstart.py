#!/usr/bin/env python
"""Quickstart: a secure JXTA-Overlay network in ~40 lines.

Sets up the §4.1 trust infrastructure (administrator, broker, two client
peers), joins the network with secureConnection + secureLogin, and
exchanges an encrypted, signed message with secureMsgPeer.

Run:  python examples/quickstart.py
"""

from repro.core import Administrator, SecureBroker, SecureClientPeer, SecurityPolicy
from repro.crypto.drbg import HmacDrbg
from repro.sim import SimNetwork

# Everything is deterministic given a seed; change it and every key,
# challenge and session id changes with it.
root = HmacDrbg(b"quickstart")
network = SimNetwork()
policy = SecurityPolicy(rsa_bits=1024)

# --- system setup (§4.1) ---------------------------------------------------
# The administrator is the trust root: self-signed credential + user DB.
admin = Administrator(root.fork(b"admin"), bits=1024)
admin.register_user("alice", "alice-password", groups={"lab"})
admin.register_user("bob", "bob-password", groups={"lab"})

# A broker: generates its key pair and receives Cred_Br^Adm.
broker = SecureBroker.create(network, "broker:0", admin, root.fork(b"broker"),
                             name="lab-broker", policy=policy)

# Client peers boot with a fresh key pair and a copy of Cred_Adm^Adm.
alice = SecureClientPeer(network, "peer:alice", root.fork(b"alice"),
                         admin.credential, name="alice-app", policy=policy)
bob = SecureClientPeer(network, "peer:bob", root.fork(b"bob"),
                       admin.credential, name="bob-app", policy=policy)

# --- joining the network (§4.2) ---------------------------------------------
broker_cred = alice.secure_connect("broker:0")   # challenge/response
print(f"alice verified broker {broker_cred.subject_name!r} "
      f"(credential issued by {broker_cred.issuer_name!r})")
groups = alice.secure_login("alice", "alice-password")
print(f"alice joined groups {groups}; credential: "
      f"{alice.keystore.credential.subject_name} <- "
      f"{alice.keystore.credential.issuer_name}")

bob.secure_connect("broker:0")
bob.secure_login("bob", "bob-password")

# --- secure messaging (§4.3) --------------------------------------------------
bob.events.subscribe(
    "secure_message_received",
    lambda from_peer, from_user, group, text: print(
        f"bob received from {from_user} in {group!r}: {text!r}"))

alice.secure_msg_peer(str(bob.peer_id), "lab", "hello over E_PK(m, S_SK(m))!")

# The message crossed the simulated wire encrypted and signed; virtual
# time accounts both the modeled network and the real crypto work:
clock = network.clock
print(f"virtual time: {clock.now * 1e3:.2f} ms "
      f"(cpu {clock.cpu_time * 1e3:.2f} ms, "
      f"network {clock.network_time * 1e3:.2f} ms)")
