#!/usr/bin/env python
"""Secure file distribution with an active adversary on the wire.

A publisher shares a document with a work group while:

* an eavesdropper records every frame (and gets only ciphertext),
* an insider tries to advertise a poisoned file under the publisher's
  identity (rejected by the CBID binding),
* the integrity of each download is checked against the signed offer.

Run:  python examples/secure_file_exchange.py
"""

from repro.attacks import Eavesdropper, forge_signed_advertisement
from repro.core import Administrator, SecureBroker, SecureClientPeer, SecurityPolicy
from repro.crypto.drbg import HmacDrbg
from repro.errors import SecurityError
from repro.sim import SimNetwork
from repro.sim.latency import CAMPUS

root = HmacDrbg(b"file-exchange")
network = SimNetwork(link=CAMPUS)
policy = SecurityPolicy(rsa_bits=1024)

admin = Administrator(root.fork(b"admin"), bits=1024)
for user in ("pat", "quinn", "insider"):
    admin.register_user(user, f"{user}-pw", groups={"team"})

broker = SecureBroker.create(network, "broker:0", admin, root.fork(b"broker"),
                             name="team-broker", policy=policy)

peers = {}
for user in ("pat", "quinn", "insider"):
    peer = SecureClientPeer(network, f"peer:{user}", root.fork(user.encode()),
                            admin.credential, name=user, policy=policy)
    peer.secure_connect("broker:0")
    peer.secure_login(user, f"{user}-pw")
    peers[user] = peer
pat, quinn, insider = peers["pat"], peers["quinn"], peers["insider"]

# the wire is hostile from the start
spy = Eavesdropper().attach(network)

# --- publish ------------------------------------------------------------------
report = ("QUARTERLY REPORT — internal only\n" + "metrics, metrics...\n" * 100).encode()
offer = pat.secure_publish_file("team", "q3-report.txt", report)
print(f"pat published {offer.file_name!r} ({offer.size} B), "
      f"sha256={offer.sha256_hex[:16]}...")

# --- insider tries to shadow the offer -------------------------------------------
forged = forge_signed_advertisement(str(pat.peer_id), "team", "peer:insider",
                                    insider.keystore, root.fork(b"forge"))
try:
    quinn.validator.validate(forged, now=network.clock.now)
    print("FORGERY ACCEPTED — this must not happen")
except SecurityError as exc:
    print(f"insider's forged offer rejected: {type(exc).__name__}")

# --- download with validation ------------------------------------------------------
offers = quinn.secure_search_files(group="team")
print(f"quinn sees validated offers: {[o.file_name for o in offers]}")
content = quinn.secure_request_file(str(pat.peer_id), "team", "q3-report.txt")
assert content == report
print(f"quinn downloaded {len(content)} B; digest matched the signed offer")

# --- what did the spy get? ------------------------------------------------------------
leaked = spy.saw_bytes(b"QUARTERLY REPORT")
print(f"eavesdropper captured {len(spy)} frames, {spy.total_bytes} B total; "
      f"report visible: {'YES' if leaked else 'no — ciphertext only'}")

# --- publisher swaps the file after advertising (supply-chain move) --------------------
pat.files.add("q3-report.txt", b"totally different bytes")
try:
    quinn.secure_request_file(str(pat.peer_id), "team", "q3-report.txt")
    print("silent content swap went UNDETECTED")
except SecurityError:
    print("content swap after publication detected via the signed digest")
